"""The Decay procedure (paper Section 2.1).

The paper's pseudocode, executed by each competing transmitter::

    procedure Decay(k, m);
        repeat at most k times (but at least once!)
            send m to all neighbors;
            set coin to 0 or 1 with equal probability
        until coin = 0.

So a contender transmits in slot 0 of the procedure unconditionally,
and keeps transmitting each subsequent slot while its coin comes up 1,
for at most ``k`` transmissions total.  On average half the remaining
contenders drop out each slot; Theorem 1 shows a lone survivor slot
exists with probability > 1/2 within ``2 log d`` slots, and with
probability ≥ 2/3 eventually.

Three implementations are provided:

* :class:`DecayProcess` — the per-node state machine used inside
  engine protocols (:mod:`repro.protocols.decay_broadcast` etc.).
* :func:`decay_step` — the same slot transition over *arrays* of
  per-node state (``active`` flags and transmission counters), used by
  the vectorized backend (:mod:`repro.sim.vectorized`) to advance every
  contender of every batched trial in one call.  It consumes coins via
  a caller-supplied ``draw(mask)`` hook for exactly the nodes the
  scalar machine would flip for, so backend parity holds draw-for-draw.
* :func:`simulate_decay_game` — a direct simulation of the
  single-receiver game of Theorem 1 (``d`` contenders, one receiver),
  used by the E1 experiment where spinning up a full engine per sample
  would dominate the measurement.

The coin bias is a parameter (``p_continue``, paper value 1/2) to
support the Hofri [H87] ablation (experiment E8).
"""

from __future__ import annotations

import random

from repro.errors import ProtocolError

__all__ = ["DecayProcess", "decay_step", "simulate_decay_game"]


class DecayProcess:
    """State machine for one execution of ``Decay(k, m)`` by one node.

    Call :meth:`wants_transmit` once per slot.  It returns ``True``
    exactly for the slots in which the paper's procedure sends, and
    flips the coin as a side effect — so call it exactly once per slot.

    Parameters
    ----------
    k:
        Maximum number of transmissions (the paper uses ``2⌈log Δ⌉``).
    message:
        The payload to send while active.
    rng:
        The node's private random stream.
    p_continue:
        Probability the coin says "keep transmitting" (paper: 0.5).
    """

    def __init__(
        self,
        k: int,
        message: object,
        rng: random.Random,
        *,
        p_continue: float = 0.5,
    ) -> None:
        if k < 1:
            raise ProtocolError("Decay requires k >= 1 (it sends at least once)")
        if not 0.0 <= p_continue <= 1.0:
            raise ProtocolError("p_continue must be in [0, 1]")
        self.k = k
        self.message = message
        self.p_continue = p_continue
        self._rng = rng
        self._sent = 0
        self._active = True

    @property
    def active(self) -> bool:
        """True while the procedure still has transmissions to make."""
        return self._active

    @property
    def transmissions_made(self) -> int:
        return self._sent

    def wants_transmit(self) -> bool:
        """Advance one slot; return whether this node transmits in it."""
        if not self._active:
            return False
        self._sent += 1
        if self._sent >= self.k:
            self._active = False  # "at most k times"
        elif self._rng.random() >= self.p_continue:
            self._active = False  # coin = 0
        return True


def decay_step(active, sent, k: int, draw, *, p_continue: float = 0.5):
    """One slot of ``Decay(k, ·)`` over arrays of per-node state.

    ``active`` (bool) and ``sent`` (int) are same-shape arrays — one
    element per in-Decay node — mutated in place exactly as
    :meth:`DecayProcess.wants_transmit` mutates its scalars; the return
    value is the transmit mask for the slot (a copy of ``active`` on
    entry).  ``draw(mask)`` must return the next uniform of each masked
    node's stream, in row-major mask order; it is called only for nodes
    whose scalar machine would flip the coin this slot (``sent + 1 < k``
    while active), which is what keeps per-node draw order — and thus
    backend parity — identical.

    Duck-typed over NumPy arrays (any array type with boolean masking
    and in-place arithmetic works); nothing here imports NumPy.
    """
    if k < 1:
        raise ProtocolError("Decay requires k >= 1 (it sends at least once)")
    if not 0.0 <= p_continue <= 1.0:
        raise ProtocolError("p_continue must be in [0, 1]")
    transmit = active.copy()
    needs_coin = active & (sent + 1 < k)
    sent += active  # each active node sends this slot
    active &= sent < k  # "at most k times"
    if needs_coin.any():
        stopped = needs_coin.copy()
        stopped[needs_coin] = draw(needs_coin) >= p_continue  # coin = 0
        active &= ~stopped
    return transmit


def simulate_decay_game(
    d: int,
    k: int,
    rng: random.Random,
    *,
    p_continue: float = 0.5,
) -> int | None:
    """Play the Theorem-1 game: ``d`` contenders run ``Decay(k, ·)``
    simultaneously toward one shared receiver.

    Returns the slot (0-based, < ``k``) at which the receiver first
    hears a lone transmitter, or ``None`` if no such slot occurs within
    the ``k``-slot window.

    The simulation tracks only the number of still-active contenders:
    in each slot all active contenders transmit (reception iff exactly
    one), then each independently stays active with probability
    ``p_continue``.  The per-contender cap of ``k`` transmissions never
    binds inside a ``k``-slot window, so the count is a sufficient
    statistic.
    """
    if d < 0:
        raise ProtocolError("d must be non-negative")
    if k < 1:
        raise ProtocolError("k must be >= 1")
    active = d
    for slot in range(k):
        if active == 0:
            return None
        if active == 1:
            return slot
        survivors = 0
        for _ in range(active):
            if rng.random() < p_continue:
                survivors += 1
        active = survivors
    return None
