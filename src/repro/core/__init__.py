"""The paper's primary contribution: Decay and its analysis.

* :mod:`repro.core.decay` — the randomized conflict-resolution
  procedure (Section 2.1) as a reusable state machine, plus a fast
  closed-form simulator of the single-receiver "Decay game".
* :mod:`repro.core.bounds` — every analytic quantity the paper defines:
  the ``P(k, d)`` reception probabilities of Theorem 1 (exact dynamic
  program and the limiting recurrence), ``M(ε)``, ``T(ε)``, and the
  Theorem 4 slot bound.
* :mod:`repro.core.schedule` — centralized broadcast-schedule
  construction (the [CW87] contrast discussed in Related Work).
"""

from repro.core.bounds import (
    decay_phase_length,
    expected_transmissions_bound,
    m_epsilon,
    num_phases,
    p_exact,
    p_infinity,
    t_epsilon,
    theorem4_slot_bound,
)
from repro.core.decay import DecayProcess, simulate_decay_game

__all__ = [
    "DecayProcess",
    "simulate_decay_game",
    "decay_phase_length",
    "num_phases",
    "m_epsilon",
    "t_epsilon",
    "theorem4_slot_bound",
    "expected_transmissions_bound",
    "p_exact",
    "p_infinity",
]
