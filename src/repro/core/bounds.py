"""Analytic quantities from the paper.

This module implements, exactly as defined in the paper:

* ``P(k, d)`` — the probability that the shared receiver hears a lone
  transmitter within ``k`` slots when ``d`` contenders run Decay
  (:func:`p_exact`, an exact dynamic program over the Markov chain on
  the number of active contenders), and its ``k → ∞`` limit
  (:func:`p_infinity`, the recurrence (1) from the proof of Theorem 1).
* ``M(ε) = ⌈log₂(n/ε)⌉`` and
  ``T(ε) = 2·D + 5·M·max(√D, M)`` (Lemma 3's notation; ``T`` counts
  *phases* of ``2⌈log Δ⌉`` slots each).
* The Theorem 4 slot bound ``2⌈log Δ⌉ · T(ε)`` for reception by all
  nodes, and the termination bound ``2⌈log Δ⌉ · (T + ⌈log(N/ε)⌉)``.
* Protocol parameters: the Decay length ``k = 2⌈log Δ⌉`` and the
  number of active phases per node, plus the expected-transmission
  bound of paper property 2 (``2n⌈log(N/ε)⌉``).

Note on the phase count: the PODC text sets ``t := ⌈2·log(N/ε)⌉`` in
the Broadcast pseudocode, while Lemma 2's union bound only needs
``⌈log₂(N/ε)⌉`` phases (each phase fails with probability ≤ 1/2 by
Theorem 1(ii), so ``n·2^(−t) ≤ ε`` already at ``t = log₂(N/ε)`` when
``N ≥ n``).  :func:`num_phases` exposes a ``multiplier`` so both
readings are available; the protocol default is the safe paper value 2.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ReproError

__all__ = [
    "log2_ceil",
    "decay_phase_length",
    "num_phases",
    "m_epsilon",
    "t_epsilon",
    "theorem4_slot_bound",
    "theorem4_termination_bound",
    "expected_transmissions_bound",
    "bfs_slot_bound",
    "p_exact",
    "p_infinity",
]


def log2_ceil(x: float) -> int:
    """``⌈log₂ x⌉`` for ``x ≥ 1`` (exact for powers of two)."""
    if x < 1:
        raise ReproError(f"log2_ceil requires x >= 1, got {x!r}")
    if isinstance(x, int) or (isinstance(x, float) and x.is_integer()):
        return (int(x) - 1).bit_length()
    return math.ceil(math.log2(x))


def decay_phase_length(max_degree: int) -> int:
    """The paper's ``k = 2⌈log Δ⌉`` — slots per Decay call.

    ``Δ`` is the a-priori upper bound on the maximum (in-)degree.  For
    ``Δ = 1`` the formula gives 0, but Decay always sends at least
    once, so the length is clamped to ≥ 1.
    """
    if max_degree < 1:
        raise ReproError("max_degree must be >= 1")
    return max(1, 2 * log2_ceil(max_degree))


def num_phases(upper_bound_n: int, epsilon: float, *, multiplier: float = 2.0) -> int:
    """Number of Decay phases each informed node executes.

    Paper pseudocode: ``t := ⌈2·log(N/ε)⌉`` (``multiplier=2``, default).
    Lemma 2's bound needs only ``⌈log₂(N/ε)⌉`` (``multiplier=1``).
    """
    _check_eps(epsilon)
    if upper_bound_n < 1:
        raise ReproError("upper_bound_n must be >= 1")
    raw = multiplier * math.log2(upper_bound_n / epsilon)
    return max(1, math.ceil(raw))


def m_epsilon(n: int, epsilon: float) -> int:
    """``M(ε) = ⌈log₂(n/ε)⌉`` (Lemma 3 notation)."""
    _check_eps(epsilon)
    if n < 1:
        raise ReproError("n must be >= 1")
    return max(1, math.ceil(math.log2(n / epsilon)))


def t_epsilon(n: int, diameter: int, epsilon: float) -> int:
    """``T(ε) = 2D + 5·M(ε)·max(√D, M(ε))`` — Lemma 3's phase bound."""
    if diameter < 0:
        raise ReproError("diameter must be non-negative")
    m = m_epsilon(n, epsilon)
    return math.ceil(2 * diameter + 5 * m * max(math.sqrt(diameter), m))


def theorem4_slot_bound(n: int, diameter: int, max_degree: int, epsilon: float) -> int:
    """Theorem 4: with probability ≥ 1 − 2ε all nodes have *received*
    the message within ``2⌈log Δ⌉ · T(ε)`` time-slots."""
    return decay_phase_length(max_degree) * t_epsilon(n, diameter, epsilon)


def theorem4_termination_bound(
    n: int,
    diameter: int,
    max_degree: int,
    epsilon: float,
    *,
    upper_bound_n: int | None = None,
) -> int:
    """Theorem 4's second clause: all nodes have *terminated* within
    ``2⌈log Δ⌉ · (T(ε) + ⌈log(N/ε)⌉)`` slots, w.p. ≥ 1 − 2ε."""
    big_n = n if upper_bound_n is None else upper_bound_n
    extra = m_epsilon(big_n, epsilon)
    return decay_phase_length(max_degree) * (t_epsilon(n, diameter, epsilon) + extra)


def expected_transmissions_bound(n: int, upper_bound_n: int, epsilon: float) -> float:
    """Paper property 2: expected total transmissions ≤ ``2n⌈log(N/ε)⌉``."""
    _check_eps(epsilon)
    return 2.0 * n * math.ceil(math.log2(upper_bound_n / epsilon))


def bfs_slot_bound(
    n: int,
    diameter: int,
    max_degree: int,
    epsilon: float,
    *,
    upper_bound_n: int | None = None,
) -> int:
    """Section 2.3: BFS completes within ``2D⌈log Δ⌉⌈log(N/ε)⌉`` slots w.p. ≥ 1 − ε."""
    big_n = n if upper_bound_n is None else upper_bound_n
    return diameter * decay_phase_length(max_degree) * m_epsilon(big_n, epsilon)


# ---------------------------------------------------------------------------
# Theorem 1: P(k, d) and its limit
# ---------------------------------------------------------------------------


def _binomial_pmf_row(count: int, p: float) -> list[float]:
    """``[P(Binomial(count, p) = m) for m in 0..count]`` without bigints."""
    row = [0.0] * (count + 1)
    # Iterative: start from (1-p)^count and multiply across.
    q = 1.0 - p
    if q == 0.0:
        row[count] = 1.0
        return row
    current = q**count
    row[0] = current
    for m in range(1, count + 1):
        current *= (count - m + 1) / m * (p / q)
        row[m] = current
    return row


def p_exact(k: int, d: int, *, p_continue: float = 0.5) -> float:
    """Exact ``P(k, d)``: probability the receiver hears a lone
    transmitter within ``k`` slots, ``d`` contenders running Decay.

    Computed by evolving the distribution of the number of active
    contenders.  States 0 (dead) and 1 (a lone transmitter next slot —
    guaranteed reception) are absorbing for the purpose of success.
    """
    if k < 1:
        raise ReproError("k must be >= 1")
    if d < 0:
        raise ReproError("d must be >= 0")
    if d == 0:
        return 0.0
    if d == 1:
        return 1.0
    # dist[i] = probability exactly i contenders are active at the start
    # of the current slot, conditioned on no lone-transmitter slot yet
    # and i >= 2.  Success at slot t (0-indexed) means exactly one
    # contender is active at the start of slot t; with d >= 2 this can
    # first happen at slot 1, so k - 1 transitions cover slots 1..k-1.
    dist = [0.0] * (d + 1)
    dist[d] = 1.0
    success = 0.0
    for _ in range(k - 1):
        nxt = [0.0] * (d + 1)
        for i in range(2, d + 1):
            mass = dist[i]
            if mass == 0.0:
                continue
            row = _binomial_pmf_row(i, p_continue)
            for m, pm in enumerate(row):
                if pm:
                    nxt[m] += mass * pm
        success += nxt[1]
        nxt[0] = 0.0  # all contenders dead: absorbed, never succeeds
        nxt[1] = 0.0  # lone transmitter: absorbed into `success`
        dist = nxt
    return success


def p_exact_table(k: int, max_d: int, *, p_continue: float = 0.5) -> dict[int, float]:
    """``{d: P(k, d)}`` for d in 0..max_d (convenience for sweeps)."""
    return {d: p_exact(k, d, p_continue=p_continue) for d in range(max_d + 1)}


@lru_cache(maxsize=None)
def p_infinity(d: int, *, p_continue: float = 0.5) -> float:
    """``P(∞, d)`` — the limit of Theorem 1(i), via recurrence (1):

    ``P(∞, d) = Σ_{i=0}^{d} C(d, i)·p^i·(1-p)^(d-i) · P(∞, i)``

    solved for ``P(∞, d)`` (the ``i = d`` term is moved to the left).
    ``P(∞, 0) = 0``, ``P(∞, 1) = 1``; Theorem 1(i) asserts the value is
    ≥ 2/3 for every ``d ≥ 2`` (at the paper's ``p = 1/2``).
    """
    if d < 0:
        raise ReproError("d must be >= 0")
    if d == 0:
        return 0.0
    if d == 1:
        return 1.0
    row = _binomial_pmf_row(d, p_continue)
    stay = row[d]
    if stay >= 1.0:  # p_continue == 1: everyone transmits forever
        return 0.0
    total = sum(row[i] * p_infinity(i, p_continue=p_continue) for i in range(1, d))
    return total / (1.0 - stay)


def _check_eps(epsilon: float) -> None:
    if not 0.0 < epsilon <= 1.0:
        raise ReproError(f"epsilon must be in (0, 1], got {epsilon!r}")
