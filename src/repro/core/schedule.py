"""Centralized broadcast schedules.

The paper frames its protocol as "a distributed algorithm for finding a
broadcast schedule ... and a trivial protocol using the schedule", and
contrasts with the centralized constructions of Chlamtac–Kutten [CK85]
(optimal scheduling is NP-hard) and Chlamtac–Weinstein [CW87] (a
polynomial-time ``O(D log² n)``-slot construction).  This module
provides that centralized side:

* :func:`greedy_layer_schedule` — a CW87-flavoured greedy: informs BFS
  layer by layer; within a layer it repeatedly picks a transmitter set
  that uniquely covers many still-uncovered next-layer nodes.  On
  bounded-degree and random graphs this yields ``O(D · log n)``-ish
  schedules; it is always correct, never optimal (that would be
  NP-hard).
* :func:`sequential_tree_schedule` — the trivial ``O(n)`` schedule
  (one transmitter per slot down a BFS tree), the baseline the greedy
  is measured against.
* :func:`simulate_schedule` / :func:`verify_schedule` — deterministic
  replay of a schedule under the radio rule (exactly-one-transmitting-
  neighbour), used by tests and by the scheduling ablation bench.
* :func:`extract_schedule` — recover the schedule implicit in a
  successful randomized run's trace (the paper's observation that the
  protocol *finds* a schedule distributedly).

A schedule is a ``list[frozenset[Node]]``: the set of transmitters for
each slot, slot 0 first.  Slot 0 must contain exactly the source (a
node may only transmit once informed, and only the source starts
informed).
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.errors import GraphError, ReproError
from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_layers
from repro.sim.trace import Trace

__all__ = [
    "greedy_layer_schedule",
    "sequential_tree_schedule",
    "simulate_schedule",
    "verify_schedule",
    "extract_schedule",
    "schedule_length",
]

Node = Hashable
Schedule = list[frozenset]


def schedule_length(schedule: Sequence[frozenset]) -> int:
    """Number of time-slots the schedule occupies."""
    return len(schedule)


def simulate_schedule(g: Graph, source: Node, schedule: Sequence[frozenset]) -> dict[Node, int]:
    """Deterministically replay ``schedule`` on ``g``.

    Returns ``{node: slot of first reception}`` (the source maps to -1,
    meaning "informed before slot 0").  Transmitters that are not yet
    informed at their scheduled slot make the schedule invalid.
    """
    informed: dict[Node, int] = {source: -1}
    for slot, transmitters in enumerate(schedule):
        for t in transmitters:
            if t not in informed:
                raise ReproError(
                    f"schedule is invalid: {t!r} transmits at slot {slot} before being informed"
                )
        for node in g.nodes:
            if node in informed:
                continue
            audible = [t for t in transmitters if g.has_edge(t, node)]
            if len(audible) == 1:
                informed[node] = slot
        # Receptions take effect at the end of the slot, so a node
        # informed at slot t may first transmit at slot t + 1.  The
        # validity check above runs before this slot's deliveries are
        # merged, which encodes exactly that rule.
    return informed


def verify_schedule(g: Graph, source: Node, schedule: Sequence[frozenset]) -> bool:
    """True iff replaying ``schedule`` informs every node of ``g``."""
    try:
        informed = simulate_schedule(g, source, schedule)
    except ReproError:
        return False
    return len(informed) == g.num_nodes()


def sequential_tree_schedule(g: Graph, source: Node) -> Schedule:
    """The trivial ``O(n)`` schedule: one transmitter per slot.

    Walks the BFS layers; each already-informed node with uninformed
    neighbours transmits alone in its own slot.  Never any collision,
    always ``≤ n - 1`` slots after slot 0.
    """
    layers = bfs_layers(g, source)
    if sum(len(layer) for layer in layers) != g.num_nodes():
        raise GraphError("graph must be connected from the source")
    schedule: Schedule = []
    informed = {source}
    for layer_index in range(len(layers) - 1):
        nxt = set(layers[layer_index + 1])
        for parent in sorted(layers[layer_index], key=repr):
            if nxt & set(g.neighbors(parent)) - informed:
                schedule.append(frozenset({parent}))
                informed |= set(g.neighbors(parent)) & nxt
    return schedule if schedule else [frozenset({source})]


def greedy_layer_schedule(
    g: Graph,
    source: Node,
    *,
    rng: random.Random | None = None,
) -> Schedule:
    """A CW87-flavoured greedy layered schedule.

    For each BFS layer transition ``L_j → L_{j+1}``: while some node of
    ``L_{j+1}`` is uncovered, build one slot's transmitter set ``A``
    greedily — scan candidate transmitters (shuffled if ``rng`` given,
    else in label order) and add a candidate iff adding it increases
    the number of uncovered nodes hearing *exactly one* member of
    ``A``.  Each slot covers at least one node, so termination is
    guaranteed; in practice each slot covers a constant fraction.
    """
    layers = bfs_layers(g, source)
    if sum(len(layer) for layer in layers) != g.num_nodes():
        raise GraphError("graph must be connected from the source")
    schedule: Schedule = [frozenset({source})]
    for layer_index in range(len(layers) - 1):
        senders = sorted(layers[layer_index], key=repr)
        uncovered = set(layers[layer_index + 1])
        # Nodes adjacent to the source were covered by slot 0 already.
        if layer_index == 0:
            uncovered -= set(g.neighbors(source))
        while uncovered:
            candidates = list(senders)
            if rng is not None:
                rng.shuffle(candidates)
            chosen: set[Node] = set()
            covered = _uniquely_covered(g, chosen, uncovered)
            for cand in candidates:
                trial = chosen | {cand}
                trial_covered = _uniquely_covered(g, trial, uncovered)
                if len(trial_covered) > len(covered):
                    chosen = trial
                    covered = trial_covered
            if not covered:
                # Degenerate fallback: a single transmitter adjacent to
                # an uncovered node always covers it.
                target = next(iter(uncovered))
                parent = next(
                    t for t in senders if g.has_edge(t, target)
                )
                chosen = {parent}
                covered = _uniquely_covered(g, chosen, uncovered)
            schedule.append(frozenset(chosen))
            uncovered -= covered
    return schedule


def _uniquely_covered(g: Graph, transmitters: set, uncovered: set) -> set:
    """Uncovered nodes hearing exactly one member of ``transmitters``."""
    out = set()
    for node in uncovered:
        audible = 0
        for t in transmitters:
            if g.has_edge(t, node):
                audible += 1
                if audible > 1:
                    break
        if audible == 1:
            out.add(node)
    return out


def extract_schedule(trace: Trace, source: Node) -> Schedule:
    """Recover the effective broadcast schedule from a run's trace.

    Keeps, per slot, only the transmitters whose transmission caused a
    *first* delivery to some node, yielding a compact deterministic
    schedule that replays the run's information flow.  This realises
    the paper's remark that the randomized protocol is "a distributed
    algorithm for finding a broadcast schedule".

    The returned schedule is dense (slots with no first delivery are
    dropped), hence generally much shorter than the run.  Dropping
    non-useful transmitters preserves every kept delivery: a receiver
    that heard exactly one transmitter among all of them still hears
    exactly one among a subset containing it.  Causality is preserved
    because a sender's own informing delivery is itself a kept delivery
    at a strictly earlier slot.  Only valid for static topologies (no
    fault schedule during the traced run).
    """
    first_seen: dict[Node, int] = {source: -1}
    useful_slots: list[tuple[int, set]] = []
    for rec in trace:
        useful: set = set()
        for receiver, (sender, _message) in rec.deliveries.items():
            if receiver not in first_seen:
                first_seen[receiver] = rec.slot
                useful.add(sender)
        if useful:
            useful_slots.append((rec.slot, useful))
    schedule: Schedule = []
    for _slot, transmitters in useful_slots:
        schedule.append(frozenset(transmitters))
    return schedule
