"""Tests for the goodness-of-fit machinery, and the distributional
checks it powers: the simulator must match the paper's exact laws in
distribution, not just on average."""

import random

import pytest

from repro.analysis.gof import (
    chi_square_pvalue,
    chi_square_statistic,
    chi_square_test,
    pool_small_bins,
)
from repro.errors import ExperimentError


class TestPooling:
    def test_pools_small_tail(self):
        obs, exp = pool_small_bins([10, 10, 1, 1], [10, 10, 2, 2], min_expected=5)
        assert exp == [10, 14]
        assert obs == [10, 12]

    def test_no_pooling_needed(self):
        obs, exp = pool_small_bins([5, 5], [6, 6])
        assert obs == [5, 5] and exp == [6, 6]

    def test_mismatched_lengths(self):
        with pytest.raises(ExperimentError):
            pool_small_bins([1], [1, 2])


class TestStatistic:
    def test_perfect_fit_is_zero(self):
        stat, df = chi_square_statistic([50, 50], [50, 50])
        assert stat == 0.0 and df == 1

    def test_known_value(self):
        # Classic: observed [45,55] vs fair [50,50]: X^2 = 25/50*2 = 1.0
        stat, _df = chi_square_statistic([45, 55], [50, 50])
        assert stat == pytest.approx(1.0)

    def test_scaling_of_expected(self):
        # Expected given as probabilities scaled by total automatically.
        a, _ = chi_square_statistic([45, 55], [0.5, 0.5])
        b, _ = chi_square_statistic([45, 55], [50, 50])
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            chi_square_statistic([], [])
        with pytest.raises(ExperimentError):
            chi_square_statistic([1], [0])


class TestPValue:
    def test_zero_statistic_pvalue_one(self):
        assert chi_square_pvalue(0.0, 3) == pytest.approx(1.0)

    def test_monotone_in_statistic(self):
        assert chi_square_pvalue(1.0, 3) > chi_square_pvalue(10.0, 3)

    def test_known_quantile(self):
        # Chi2 with 1 df: P(X >= 3.841) ~ 0.05.
        assert chi_square_pvalue(3.841, 1) == pytest.approx(0.05, abs=0.005)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            chi_square_pvalue(1.0, 0)
        with pytest.raises(ExperimentError):
            chi_square_pvalue(-1.0, 2)


class TestDecayDistributionMatchesTheory:
    """The simulator's laws vs the paper's exact laws, α = 0.001."""

    def test_decay_transmission_counts_are_geometric(self):
        from repro.core.decay import DecayProcess

        k = 8
        rng = random.Random(2024)
        counts: dict[int, int] = {}
        for _ in range(20000):
            proc = DecayProcess(k, "m", rng)
            n = 0
            while proc.wants_transmit():
                n += 1
            counts[n] = counts.get(n, 0) + 1
        # P(N = j) = 2^-j for j < k; P(N = k) = 2^-(k-1); index 0 unused.
        probs = [0.0] + [2.0**-j for j in range(1, k)] + [2.0 ** -(k - 1)]
        # Drop the impossible 0 bin before testing.
        out = chi_square_test(
            {j - 1: counts.get(j, 0) for j in range(1, k + 1)}, probs[1:]
        )
        assert out["p_value"] > 0.001

    def test_decay_game_success_rate_matches_p_exact(self):
        from repro.core.bounds import p_exact
        from repro.core.decay import simulate_decay_game

        d, k = 10, 8
        rng = random.Random(77)
        reps = 20000
        hits = sum(
            1 for _ in range(reps) if simulate_decay_game(d, k, rng) is not None
        )
        p = p_exact(k, d)
        out = chi_square_test([hits, reps - hits], [p, 1 - p])
        assert out["p_value"] > 0.001

    def test_engine_reception_times_match_markov_chain(self):
        # The slot of first reception in the Theorem-1 game, engine vs
        # the direct Markov simulation, must agree in distribution.
        from repro.core.decay import simulate_decay_game
        from repro.experiments.exp_decay import engine_decay_game
        from repro.graphs import star
        from repro.rng import spawn
        from repro.sim import Engine
        from repro.experiments.exp_decay import _DecayLeaf, _Hub

        d, k = 6, 6
        reps = 1500
        markov: dict[int, int] = {}
        rng = random.Random(5)
        for _ in range(reps * 4):
            slot = simulate_decay_game(d, k, rng)
            key = k if slot is None else slot
            markov[key] = markov.get(key, 0) + 1
        engine_counts: dict[int, int] = {}
        for seed in range(reps):
            g = star(d)
            programs = {0: _Hub(k)}
            for leaf in range(1, d + 1):
                programs[leaf] = _DecayLeaf(k)
            engine = Engine(
                g, programs, seed=seed, initiators=frozenset(range(1, d + 1))
            )
            result = engine.run(k)
            slot = result.metrics.first_reception.get(0)
            key = k if slot is None else slot
            engine_counts[key] = engine_counts.get(key, 0) + 1
        probs = [markov.get(i, 0) / (reps * 4) for i in range(k + 1)]
        out = chi_square_test(
            {i: engine_counts.get(i, 0) for i in range(k + 1)},
            [max(p, 1e-9) for p in probs],
        )
        assert out["p_value"] > 0.001
