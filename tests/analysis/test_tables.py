"""Tests for the table renderer."""

import pytest

from repro.analysis.tables import Table
from repro.errors import ExperimentError


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ExperimentError):
            Table("t", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ExperimentError):
            Table("t", ["a", "a"])


class TestRows:
    def test_positional(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, 2)
        assert t.rows == [[1, 2]]

    def test_named(self):
        t = Table("t", ["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows == [[1, 2]]

    def test_named_missing_defaults_empty(self):
        t = Table("t", ["a", "b"])
        t.add_row(a=1)
        assert t.rows == [[1, ""]]

    def test_unknown_named_rejected(self):
        t = Table("t", ["a"])
        with pytest.raises(ExperimentError):
            t.add_row(z=1)

    def test_wrong_arity_rejected(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ExperimentError):
            t.add_row(1)

    def test_mixed_rejected(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ExperimentError):
            t.add_row(1, b=2)

    def test_column_access(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, "x")
        t.add_row(2, "y")
        assert t.column("a") == [1, 2]
        assert t.column("b") == ["x", "y"]

    def test_missing_column(self):
        t = Table("t", ["a"])
        with pytest.raises(ExperimentError):
            t.column("zzz")

    def test_len_and_iter(self):
        t = Table("t", ["a"])
        t.add_row(1)
        t.add_row(2)
        assert len(t) == 2
        assert [row[0] for row in t] == [1, 2]


class TestRendering:
    def test_render_contains_everything(self):
        t = Table("My Title", ["name", "value"])
        t.add_row("alpha", 3.14159)
        text = t.render()
        assert "My Title" in text
        assert "name" in text and "value" in text
        assert "alpha" in text
        assert "3.142" in text

    def test_bool_formatting(self):
        t = Table("t", ["ok"])
        t.add_row(True)
        t.add_row(False)
        assert "yes" in t.render() and "no" in t.render()

    def test_float_formats(self):
        t = Table("t", ["x"])
        t.add_row(123456.0)
        t.add_row(0.0001)
        t.add_row(float("nan"))
        text = t.render()
        assert "1.23e+05" in text
        assert "0.0001" in text
        assert "nan" in text

    def test_empty_table_renders(self):
        t = Table("t", ["a", "b"])
        assert "a" in t.render()

    def test_csv(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2"

    def test_str_is_render(self):
        t = Table("t", ["a"])
        t.add_row(1)
        assert str(t) == t.render()
