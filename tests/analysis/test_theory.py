"""Tests for tail bounds and fits."""

import math
import random

import pytest

from repro.analysis.theory import (
    chernoff_binomial_upper_tail,
    fit_linear,
    fit_loglinear,
    hoeffding_lower_tail,
)
from repro.errors import ExperimentError


class TestHoeffding:
    def test_trivial_when_threshold_above_mean(self):
        assert hoeffding_lower_tail(100, 0.5, 60) == 1.0

    def test_known_value(self):
        # P(X <= 40), X ~ Bin(100, 0.5): bound exp(-2*100*(0.1)^2) = exp(-2)
        assert hoeffding_lower_tail(100, 0.5, 40) == pytest.approx(math.exp(-2))

    def test_actually_bounds_the_tail(self):
        rng = random.Random(0)
        trials, p, threshold = 60, 0.5, 20
        reps = 20000
        hits = sum(
            1
            for _ in range(reps)
            if sum(rng.random() < p for _ in range(trials)) <= threshold
        )
        assert hits / reps <= hoeffding_lower_tail(trials, p, threshold) + 0.01

    def test_validation(self):
        with pytest.raises(ExperimentError):
            hoeffding_lower_tail(0, 0.5, 1)
        with pytest.raises(ExperimentError):
            hoeffding_lower_tail(10, 1.5, 1)


class TestChernoffUpper:
    def test_symmetry_with_lower(self):
        assert chernoff_binomial_upper_tail(100, 0.5, 60) == pytest.approx(
            hoeffding_lower_tail(100, 0.5, 40)
        )

    def test_trivial_region(self):
        assert chernoff_binomial_upper_tail(10, 0.9, 5) == 1.0


class TestFits:
    def test_perfect_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_line_r2_below_one(self):
        fit = fit_linear([1, 2, 3, 4, 5], [2.1, 3.9, 6.2, 7.8, 10.1])
        assert 0.9 < fit.r_squared <= 1.0

    def test_loglinear_fits_log_growth(self):
        xs = [2**i for i in range(1, 8)]
        ys = [5 + 3 * math.log2(x) for x in xs]
        fit = fit_loglinear(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(5.0)

    def test_loglinear_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            fit_loglinear([0, 1], [1, 2])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            fit_linear([1], [2])
        with pytest.raises(ExperimentError):
            fit_linear([1, 2], [3])
        with pytest.raises(ExperimentError):
            fit_linear([2, 2], [1, 5])

    def test_constant_ys_r2_one(self):
        fit = fit_linear([1, 2, 3], [4, 4, 4])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_linear_separates_growth_classes(self):
        # The gap experiment's discriminator: linear data fits x far
        # better than log2(x) fits it.
        xs = [2**i for i in range(3, 10)]
        linear_ys = [3 * x + 1 for x in xs]
        fit_as_linear = fit_linear(xs, linear_ys)
        fit_as_log = fit_loglinear(xs, linear_ys)
        assert fit_as_linear.r_squared > fit_as_log.r_squared
