"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    empirical_cdf,
    mean,
    mean_confidence_interval,
    quantile,
    stddev,
    summarize,
    wilson_interval,
)
from repro.errors import ExperimentError


class TestMeanStd:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty(self):
        with pytest.raises(ExperimentError):
            mean([])

    def test_stddev_known_value(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            math.sqrt(32 / 7)
        )

    def test_stddev_single_sample(self):
        assert stddev([5]) == 0.0

    def test_stddev_empty(self):
        with pytest.raises(ExperimentError):
            stddev([])


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3, 1, 2], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 9

    def test_bad_q(self):
        with pytest.raises(ExperimentError):
            quantile([1], 1.5)

    def test_empty(self):
        with pytest.raises(ExperimentError):
            quantile([], 0.5)


class TestCdf:
    def test_values(self):
        data = [1, 2, 3, 4]
        assert empirical_cdf(data, 2.5) == 0.5
        assert empirical_cdf(data, 0) == 0.0
        assert empirical_cdf(data, 10) == 1.0

    def test_empty(self):
        with pytest.raises(ExperimentError):
            empirical_cdf([], 1)


class TestIntervals:
    def test_mean_ci_contains_mean(self):
        lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo <= 2.5 <= hi

    def test_mean_ci_shrinks_with_samples(self):
        narrow = mean_confidence_interval([1, 2] * 100)
        wide = mean_confidence_interval([1, 2] * 2)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_wilson_basics(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_extremes_stay_in_unit_interval(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and hi < 0.3
        lo, hi = wilson_interval(20, 20)
        assert lo > 0.7 and hi == 1.0

    def test_wilson_validation(self):
        with pytest.raises(ExperimentError):
            wilson_interval(1, 0)
        with pytest.raises(ExperimentError):
            wilson_interval(5, 3)


class TestSummarize:
    def test_fields(self):
        s = summarize([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert s.count == 10
        assert s.mean == 5.5
        assert s.minimum == 1
        assert s.maximum == 10
        assert s.p50 == 5.5

    def test_str_renders(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text and "mean=1.50" in text
