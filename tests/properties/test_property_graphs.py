"""Property-based tests for the graph substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bfs_layers,
    c_n,
    distances_from,
    is_connected,
    random_gnp,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    max_size=40,
)


@given(edge_lists)
def test_graph_edge_symmetry_invariant(edges):
    g = Graph(edges=edges)
    for u, v in g.edges:
        assert g.has_edge(v, u)
        assert u in g.neighbors(v) and v in g.neighbors(u)


@given(edge_lists)
def test_degree_sum_equals_twice_edges(edges):
    g = Graph(edges=edges)
    assert sum(g.degree(v) for v in g.nodes) == 2 * g.num_edges()


@given(edge_lists)
def test_copy_equals_original(edges):
    g = Graph(edges=edges)
    assert g.copy() == g


@given(edge_lists, st.randoms(use_true_random=False))
def test_remove_then_add_edge_roundtrip(edges, rnd):
    g = Graph(edges=edges)
    if not g.edges:
        return
    u, v = rnd.choice(g.edges)
    g2 = g.copy()
    g2.remove_edge(u, v)
    assert not g2.has_edge(u, v)
    g2.add_edge(u, v)
    assert g2 == g


@given(edge_lists)
def test_distances_satisfy_triangle_step(edges):
    g = Graph(edges=edges)
    if g.num_nodes() == 0:
        return
    source = g.nodes[0]
    dist = distances_from(g, source)
    # Every edge changes distance by at most 1 between reachable nodes.
    for u, v in g.edges:
        if u in dist and v in dist:
            assert abs(dist[u] - dist[v]) <= 1


@given(edge_lists)
def test_bfs_layers_are_a_partition(edges):
    g = Graph(edges=edges)
    if g.num_nodes() == 0:
        return
    source = g.nodes[0]
    layers = bfs_layers(g, source)
    flat = [v for layer in layers for v in layer]
    assert len(flat) == len(set(flat))
    dist = distances_from(g, source)
    for depth, layer in enumerate(layers):
        for v in layer:
            assert dist[v] == depth


@given(st.integers(2, 30), st.data())
def test_c_n_always_diameter_le_3_and_connected(n, data):
    subset = data.draw(
        st.sets(st.integers(1, n), min_size=1, max_size=n)
    )
    g = c_n(n, subset)
    assert is_connected(g)
    dist = distances_from(g, 0)
    assert max(dist.values()) <= 3
    assert dist[n + 1] in (2, 3)


@settings(max_examples=25)
@given(st.integers(2, 25), st.floats(0.0, 1.0), st.integers(0, 10**6))
def test_random_gnp_connected_when_stitched(n, p, seed):
    g = random_gnp(n, p, random.Random(seed))
    assert is_connected(g)
    assert g.num_nodes() == n
