"""Property-based tests for Decay and the Theorem-1 quantities."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import decay_phase_length, p_exact, p_infinity
from repro.core.decay import DecayProcess, simulate_decay_game


@given(st.integers(1, 20), st.integers(0, 10**6), st.floats(0.0, 1.0))
def test_decay_process_respects_cap_and_prefix(k, seed, p_continue):
    proc = DecayProcess(k, "m", random.Random(seed), p_continue=p_continue)
    pattern = [proc.wants_transmit() for _ in range(k + 5)]
    # Sends at least once, at most k times, as a contiguous prefix.
    assert pattern[0] is True
    count = sum(pattern)
    assert 1 <= count <= k
    assert all(pattern[:count]) and not any(pattern[count:])
    assert proc.transmissions_made == count


@given(st.integers(0, 40), st.integers(1, 16), st.integers(0, 10**6))
def test_game_result_in_window_or_none(d, k, seed):
    result = simulate_decay_game(d, k, random.Random(seed))
    assert result is None or 0 <= result < k
    if d == 1:
        assert result == 0
    if d == 0:
        assert result is None
    if d >= 2 and result is not None:
        assert result >= 1


@settings(max_examples=30)
@given(st.integers(2, 40))
def test_p_exact_monotone_in_k(d):
    values = [p_exact(k, d) for k in range(1, 12)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert all(0.0 <= v <= 1.0 for v in values)


@settings(max_examples=30)
@given(st.integers(2, 60))
def test_theorem1_claims_hold_for_all_d(d):
    k = decay_phase_length(d)
    assert p_exact(k, d) >= 0.5 - 1e-12  # Theorem 1(ii)
    assert p_infinity(d) >= 2 / 3 - 1e-12  # Theorem 1(i)
    assert p_infinity(d) >= p_exact(k, d) - 1e-12


@settings(max_examples=20)
@given(st.integers(2, 20), st.floats(0.05, 0.95))
def test_p_exact_bounded_by_limit_for_any_bias(d, bias):
    assert p_exact(8, d, p_continue=bias) <= p_infinity(d, p_continue=bias) + 1e-9


@settings(max_examples=15)
@given(st.integers(2, 12), st.integers(2, 10))
def test_p_exact_agrees_with_direct_enumeration(d, k):
    # Cross-validate the DP against brute-force Monte Carlo with a
    # fixed, generous sample (cheap for these sizes).
    rng = random.Random(1234)
    reps = 4000
    hits = sum(1 for _ in range(reps) if simulate_decay_game(d, k, rng) is not None)
    expected = p_exact(k, d)
    # 4000 samples: 4-sigma tolerance.
    sigma = (expected * (1 - expected) / reps) ** 0.5
    assert abs(hits / reps - expected) <= 4 * sigma + 1e-9
