"""Property-based tests for broadcast schedules and protocols."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    greedy_layer_schedule,
    sequential_tree_schedule,
    verify_schedule,
)
from repro.graphs import random_gnp
from repro.protocols.base import run_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs


connected_graph = st.builds(
    lambda n, p, seed: random_gnp(n, p, random.Random(seed)),
    st.integers(2, 28),
    st.floats(0.0, 0.6),
    st.integers(0, 10**6),
)


@settings(max_examples=40, deadline=None)
@given(connected_graph)
def test_tree_schedule_always_valid_and_short(g):
    schedule = sequential_tree_schedule(g, 0)
    assert verify_schedule(g, 0, schedule)
    assert len(schedule) <= g.num_nodes()


@settings(max_examples=40, deadline=None)
@given(connected_graph, st.integers(0, 100))
def test_greedy_schedule_always_valid(g, shuffle_seed):
    schedule = greedy_layer_schedule(g, 0, rng=random.Random(shuffle_seed))
    assert verify_schedule(g, 0, schedule)


@settings(max_examples=30, deadline=None)
@given(connected_graph)
def test_dfs_always_completes_within_2n(g):
    n = g.num_nodes()
    result = run_broadcast(
        g, make_dfs_programs(g, 0), initiators={0}, max_slots=2 * n + 2,
        stop="informed",
    )
    slot = result.broadcast_completion_slot(source=0)
    assert slot is not None
    assert slot <= 2 * n


@settings(max_examples=30, deadline=None)
@given(connected_graph)
def test_round_robin_never_collides_and_completes(g):
    from repro.sim import Engine

    n = g.num_nodes()
    programs = make_round_robin_programs(g, 0)
    engine = Engine(g, programs, initiators={0}, record_trace=True)
    result = engine.run(n * (n + 2))
    assert result.metrics.collisions == 0
    informed = set(result.metrics.first_reception) | {0}
    assert informed == set(g.nodes)


@settings(max_examples=25, deadline=None)
@given(connected_graph, st.integers(0, 10**6))
def test_decay_broadcast_honest_outcome(g, seed):
    # The run either reaches everyone (and says so) or reports failure;
    # reported first receptions are causally sane (>= BFS distance - 1).
    from repro.graphs.properties import distances_from
    from repro.protocols.decay_broadcast import run_decay_broadcast

    result = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.2)
    truth = distances_from(g, 0)
    for node, slot in result.metrics.first_reception.items():
        assert slot >= truth[node] - 1
    if result.broadcast_succeeded(source=0):
        assert set(result.metrics.first_reception) | {0} == set(g.nodes)
