"""Property-based tests for the lower-bound machinery.

These are the paper's Lemmas 9 and 10 as executable properties: for
*arbitrary* move sequences, ``find_set`` must produce a consistent set,
and for at most ``n/2`` moves a non-empty one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbound.adversary import audit_charges, find_set
from repro.lowerbound.hitting_game import Referee


@st.composite
def moves_and_n(draw, max_n=24, half_bound=True):
    n = draw(st.integers(2, max_n))
    t_max = n // 2 if half_bound else 2 * n
    t = draw(st.integers(1, max(1, t_max)))
    moves = [
        draw(st.sets(st.integers(1, n), min_size=1, max_size=n)) for _ in range(t)
    ]
    return n, moves


@settings(max_examples=120)
@given(moves_and_n())
def test_lemma10_nonempty_within_half_n(case):
    n, moves = case
    s = find_set(moves, n)
    assert s, (n, moves)


@settings(max_examples=120)
@given(moves_and_n())
def test_lemma9_consistency(case):
    n, moves = case
    s = find_set(moves, n)
    complement = set(range(1, n + 1)) - set(s)
    for m in moves:
        assert len(set(m) & set(s)) != 1
        assert (len(set(m) & complement) == 1) == (len(m) == 1)


@settings(max_examples=120)
@given(moves_and_n())
def test_referee_gives_only_canonical_answers(case):
    n, moves = case
    s = find_set(moves, n)
    referee = Referee(n, s)
    for m in moves:
        answer = referee.answer(m)
        assert answer.kind != "hit"
        if len(m) == 1:
            assert answer.kind == "miss"
        else:
            assert answer.kind == "nothing"


@settings(max_examples=120)
@given(moves_and_n())
def test_charging_bound_2t_minus_1(case):
    n, moves = case
    audit = audit_charges(moves, n)
    t = len(moves)
    if audit["removed"] > 0:
        assert audit["removed"] <= 2 * t - 1
    assert audit["final_size"] == n - audit["removed"]


@settings(max_examples=60)
@given(moves_and_n(half_bound=False))
def test_find_set_safe_beyond_half_n(case):
    # Past n/2 moves emptiness is allowed, but consistency must hold
    # whenever the output is non-empty, and the call must not crash.
    n, moves = case
    s = find_set(moves, n)
    if s:
        complement = set(range(1, n + 1)) - set(s)
        for m in moves:
            assert len(set(m) & set(s)) != 1
            assert (len(set(m) & complement) == 1) == (len(m) == 1)


@settings(max_examples=60)
@given(moves_and_n())
def test_find_set_deterministic(case):
    n, moves = case
    assert find_set(moves, n) == find_set(moves, n)
