"""Property-based tests of the engine's radio semantics.

The central invariant of the whole reproduction: whatever the programs
do, a node is delivered a message in a slot iff it was receiving and
exactly one of its neighbours transmitted — and no-CD observations never
distinguish collision from silence.
"""

import random
from typing import Any

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.sim import (
    COLLISION,
    SILENCE,
    CollisionDetectingMedium,
    Context,
    Engine,
    Idle,
    NodeProgram,
    Receive,
    Transmit,
)


class RandomActor(NodeProgram):
    """Acts randomly each slot using its private stream; logs everything."""

    def __init__(self, p_transmit: float) -> None:
        self.p_transmit = p_transmit
        self.actions: list[str] = []
        self.observations: list[Any] = []

    def act(self, ctx: Context):
        roll = ctx.rng.random()
        if roll < self.p_transmit:
            self.actions.append("T")
            return Transmit(("from", ctx.node))
        if roll < self.p_transmit + 0.4:
            self.actions.append("R")
            return Receive()
        self.actions.append("I")
        return Idle()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        self.observations.append((ctx.slot, heard))


edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=25,
)


def run_random_system(edges, seed, slots, medium=None):
    g = Graph(nodes=range(10), edges=edges)
    programs = {node: RandomActor(0.3) for node in g.nodes}
    engine = Engine(
        g,
        programs,
        seed=seed,
        medium=medium,
        initiators=set(g.nodes),
        record_trace=True,
    )
    result = engine.run(slots)
    return g, programs, result


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.integers(0, 10**6), st.integers(1, 12))
def test_reception_rule_exact(edges, seed, slots):
    g, programs, result = run_random_system(edges, seed, slots)
    for rec in result.trace:
        for receiver in rec.receivers:
            transmitting_neighbors = [
                t for t in rec.transmitters if g.has_edge(t, receiver)
            ]
            if len(transmitting_neighbors) == 1:
                sender = transmitting_neighbors[0]
                assert rec.heard[receiver] == ("from", sender)
                assert rec.deliveries[receiver] == (sender, ("from", sender))
            else:
                assert rec.heard[receiver] is SILENCE
                assert receiver not in rec.deliveries
            assert rec.conflict_counts[receiver] == len(transmitting_neighbors)


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.integers(0, 10**6), st.integers(1, 12))
def test_no_cd_observations_never_leak_collision_info(edges, seed, slots):
    _g, programs, result = run_random_system(edges, seed, slots)
    for program in programs.values():
        for _slot, heard in program.observations:
            assert heard is not COLLISION


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.integers(0, 10**6), st.integers(1, 12))
def test_cd_medium_reports_collisions_exactly(edges, seed, slots):
    g, _programs, result = run_random_system(
        edges, seed, slots, medium=CollisionDetectingMedium()
    )
    for rec in result.trace:
        for receiver in rec.receivers:
            count = rec.conflict_counts[receiver]
            if count == 0:
                assert rec.heard[receiver] is SILENCE
            elif count >= 2:
                assert rec.heard[receiver] is COLLISION


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 10**6), st.integers(1, 10))
def test_runs_are_reproducible(edges, seed, slots):
    _, programs_a, result_a = run_random_system(edges, seed, slots)
    _, programs_b, result_b = run_random_system(edges, seed, slots)
    assert result_a.metrics.first_reception == result_b.metrics.first_reception
    assert result_a.metrics.transmissions == result_b.metrics.transmissions
    for node in programs_a:
        assert programs_a[node].actions == programs_b[node].actions


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 10**6), st.integers(1, 10))
def test_metrics_agree_with_trace(edges, seed, slots):
    _g, _programs, result = run_random_system(edges, seed, slots)
    trace = result.trace
    assert result.metrics.transmissions == trace.total_transmissions()
    assert result.metrics.collisions == trace.total_collisions()
    delivered = sum(len(rec.deliveries) for rec in trace)
    assert result.metrics.deliveries == delivered
    for node, slot in result.metrics.first_reception.items():
        assert trace.first_delivery_slot(node) == slot
