"""Trend series, the regression detector, A/B compare, store explain."""

import pytest

from repro.errors import ExperimentError
from repro.obs import (
    RunStore,
    compare_runs,
    detect_regression,
    explain_from_store,
    metric_direction,
    trend_points,
)


def _seed_runs(store, values, metric="slots_per_sec"):
    ids = []
    for i, value in enumerate(values):
        run_id, _ = store.upsert_run(
            f"fp{i:04d}",
            {"created": float(i), "records": 1, "command": "gap", "seed": i},
        )
        store.add_metrics(run_id, {metric: value})
        ids.append(run_id)
    return ids


class TestDirections:
    def test_throughput_up_is_better(self):
        assert metric_direction("slots_per_sec") == "up"
        assert metric_direction("combined_slots_per_sec") == "up"

    def test_costs_down_is_better(self):
        assert metric_direction("collisions") == "down"
        assert metric_direction("wall_s") == "down"


class TestDetectRegression:
    def test_injected_20pct_drop_flags(self):
        verdict = detect_regression(
            [100.0, 101.0, 99.0, 79.0], metric="slots_per_sec"
        )
        assert verdict["regressed"]
        assert verdict["baseline"] == 100.0
        assert verdict["change"] == pytest.approx(-0.21)

    def test_small_wobble_passes(self):
        verdict = detect_regression(
            [100.0, 101.0, 99.0, 95.0], metric="slots_per_sec"
        )
        assert not verdict["regressed"]

    def test_median_baseline_shrugs_off_one_outlier(self):
        # One freak slow run in the window must not poison the baseline:
        # median of [100, 5, 101] is 100, not ~69 as a mean would give.
        verdict = detect_regression(
            [100.0, 5.0, 101.0, 99.0], metric="slots_per_sec",
        )
        assert verdict["baseline"] == pytest.approx(100.0)
        assert not verdict["regressed"]

    def test_downward_metric_regresses_upward(self):
        verdict = detect_regression(
            [10.0, 10.0, 10.0, 13.0], metric="collisions"
        )
        assert verdict["direction"] == "down"
        assert verdict["regressed"]

    def test_short_series_never_regresses(self):
        assert not detect_regression([50.0], metric="slots_per_sec")["regressed"]
        assert not detect_regression([], metric="slots_per_sec")["regressed"]

    def test_zero_baseline(self):
        up = detect_regression([0.0, 0.0], metric="slots_per_sec")
        assert not up["regressed"]
        down = detect_regression([0.0, 3.0], metric="collisions")
        assert down["regressed"]

    def test_custom_threshold_and_window(self):
        values = [100.0, 90.0, 95.0, 88.0]
        strict = detect_regression(values, threshold=0.05, metric="slots_per_sec")
        assert strict["regressed"]
        lax = detect_regression(values, threshold=0.5, metric="slots_per_sec")
        assert not lax["regressed"]
        k1 = detect_regression(values, baseline_k=1, metric="slots_per_sec")
        assert k1["baseline"] == 95.0

    def test_bad_parameters(self):
        with pytest.raises(ExperimentError):
            detect_regression([1.0], threshold=0.0)
        with pytest.raises(ExperimentError):
            detect_regression([1.0], baseline_k=0)
        with pytest.raises(ExperimentError):
            detect_regression([1.0], direction="sideways")


class TestTrendPoints:
    def test_runs_source(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            _seed_runs(store, [10.0, 20.0, 30.0])
            points = trend_points(store, "slots_per_sec")
            assert [p.value for p in points] == [10.0, 20.0, 30.0]

    def test_bench_source(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            for i, v in enumerate([100.0, 110.0]):
                store.add_bench_point(f"b{i}", {
                    "schema": "repro-bench-engine/1", "recorded": float(i),
                    "git_sha": f"sha{i}", "combined_slots_per_sec": v,
                    "topologies": {"grid-16x16": {"slots_per_sec": v / 2}},
                })
            combined = trend_points(store, "combined_slots_per_sec", source="bench")
            assert [p.value for p in combined] == [100.0, 110.0]
            per_topo = trend_points(store, "grid-16x16.slots_per_sec", source="bench")
            assert [p.value for p in per_topo] == [50.0, 55.0]

    def test_unknown_source(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            with pytest.raises(ExperimentError, match="unknown trend source"):
                trend_points(store, "slots_per_sec", source="nope")


class TestCompare:
    def test_diff_rows(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            a, b = _seed_runs(store, [100.0, 150.0])
            result = compare_runs(store, "prev", "latest")
            assert result["a"]["id"] == a and result["b"]["id"] == b
            (row,) = [r for r in result["diff"] if r["metric"] == "slots_per_sec"]
            assert row["delta"] == pytest.approx(50.0)
            assert row["pct"] == pytest.approx(50.0)

    def test_one_sided_metric(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            a, b = _seed_runs(store, [100.0, 150.0])
            store.add_metrics(b, {"faults": 3.0})
            result = compare_runs(store, a, b)
            (row,) = [r for r in result["diff"] if r["metric"] == "faults"]
            assert row["a"] is None and row["b"] == 3.0
            assert row["delta"] is None and row["pct"] is None


class TestExplainFromStore:
    def _store_with_prov(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        run_id, _ = store.upsert_run("fp0", {"created": 1.0})
        store.add_provenance(run_id, [
            {"engine_run": "r1", "slot": 4, "node": "v",
             "outcome": "collision", "tx": ["a", "b"]},
            {"engine_run": "r2", "slot": 4, "node": "v",
             "outcome": "delivered", "tx": ["a"]},
            {"engine_run": "r1", "slot": 9, "node": "v",
             "outcome": "silence", "tx": []},
        ])
        return store, run_id

    def test_hit_counts_other_engine_runs(self, tmp_path):
        store, run_id = self._store_with_prov(tmp_path)
        result = explain_from_store(store, run_id, "v", 4)
        assert result["found"]
        assert result["others"] == 1
        assert "COLLISION" in result["answer"]
        assert "[engine run r1]" in result["answer"]

    def test_engine_run_filter(self, tmp_path):
        store, run_id = self._store_with_prov(tmp_path)
        result = explain_from_store(store, run_id, "v", 4, engine_run="r2")
        assert result["others"] == 0
        assert "RECEIVED" in result["answer"]

    def test_miss_reports_nearby_slots(self, tmp_path):
        store, run_id = self._store_with_prov(tmp_path)
        result = explain_from_store(store, run_id, "v", 7)
        assert not result["found"]
        assert {e["slot"] for e in result["nearby"]} == {4, 9}

    def test_no_provenance_raises(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            run_id, _ = store.upsert_run("fp0", {"created": 1.0})
            with pytest.raises(ExperimentError, match="no provenance rows"):
                explain_from_store(store, run_id, "v", 0)
