"""Terminal tables, sparklines, and the HTML dashboards."""

from repro.obs import (
    RunStore,
    TrendPoint,
    detect_regression,
    render_run_html,
    render_trend_html,
    run_tables,
    sparkline,
    trend_table,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_is_mid_blocks(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_monotone_series_ends_at_extremes(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0])
        assert out[0] == "▁"  # lowest block
        assert out[-1] == "█"  # highest block

    def test_width_buckets_down(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10


def _seeded_store(tmp_path):
    store = RunStore(tmp_path / "runs.db")
    run_id, _ = store.upsert_run("fp0cafe0", {
        "command": "gap", "seed": 3, "created": 10.0, "git_sha": "abc",
        "host": "box", "package_version": "0.1", "records": 12,
        "config_fingerprint": "cfg0", "ingested_at": 11.0,
        "source_path": "g.jsonl",
    })
    store.add_metrics(run_id, {
        "slots": 400.0, "slots_per_sec": 1234.5, "collisions": 7.0,
        "deliveries": 30.0, "engine_runs": 4.0, "wall_s": 0.3,
        "transmissions": 50.0, "faults": 0.0, "chunks": 0.0, "campaigns": 0.0,
        "jam_transmissions": 0.0,
    })
    store.add_series(run_id, "slots_per_sec", [(256, 1000.0), (512, 1400.0)])
    store.add_phases(run_id, [
        {"proto": "decay", "idx": 0, "count": 4, "slot_mean": 8.0,
         "mean_length": 9.0},
    ])
    return store, store.resolve_run(run_id)


class TestRunTables:
    def test_tables_render(self, tmp_path):
        store, run = _seeded_store(tmp_path)
        text = "\n\n".join(t.render() for t in run_tables(store, run))
        assert "fp0cafe0" in text
        assert "slots_per_sec" in text
        assert "decay" in text


class TestTrendTable:
    def test_rows_and_spark(self):
        points = [TrendPoint(label=f"p{i}", value=v)
                  for i, v in enumerate([100.0, 110.0, 90.0])]
        verdict = detect_regression([p.value for p in points])
        text = trend_table("slots_per_sec", points, verdict).render()
        assert "p0" in text and "p2" in text
        assert "slots_per_sec" in text


class TestHtml:
    def test_run_dashboard_self_contained(self, tmp_path):
        store, run = _seeded_store(tmp_path)
        html = render_run_html(store, run)
        assert html.startswith("<!DOCTYPE html>" ) or "<html" in html
        assert "<svg" in html  # the slots/sec series chart
        assert "fp0cafe0" in html
        # self-contained: no external fetches (the only URL is the SVG
        # xmlns namespace identifier, which browsers never dereference)
        assert "https://" not in html
        assert "<script" not in html and "<link" not in html

    def test_trend_dashboard_marks_regression(self):
        values = [100.0, 101.0, 99.0, 60.0]
        points = [TrendPoint(label=f"p{i}", value=v)
                  for i, v in enumerate(values)]
        verdict = detect_regression(values, metric="slots_per_sec")
        assert verdict["regressed"]
        html = render_trend_html("slots_per_sec", points, verdict)
        assert "<svg" in html
        assert "REGRESSED" in html
        assert "floor" in html  # the tripwire line is drawn and labelled
        assert "https://" not in html
