"""Run-store schema, idempotent upsert, and query behavior."""

import sqlite3

import pytest

from repro.errors import ExperimentError
from repro.obs import SCHEMA_VERSION, RunStore


def _info(**overrides):
    info = {
        "command": "gap",
        "seed": 1,
        "created": 100.0,
        "git_sha": "abc",
        "host": "h",
        "package_version": "0",
        "config_fingerprint": "cfg",
        "config_json": "{}",
        "source_path": "x.jsonl",
        "records": 10,
        "ingested_at": 200.0,
    }
    info.update(overrides)
    return info


class TestSchema:
    def test_fresh_store_stamped_with_version(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            (row,) = store.conn.execute("PRAGMA user_version").fetchall()
            assert row["user_version"] == SCHEMA_VERSION

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "runs.db"
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="newer"):
            RunStore(path)

    def test_reopen_existing_store(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            store.upsert_run("f1", _info())
        with RunStore(path) as store:
            assert len(store.runs()) == 1


class TestUpsert:
    def test_insert_then_replace_keeps_id(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            run_id, replaced = store.upsert_run("f1", _info())
            assert not replaced
            store.add_metrics(run_id, {"slots": 5.0})
            store.add_series(run_id, "s", [(0, 1.0)])
            store.add_phases(run_id, [{"proto": "decay", "idx": 0, "count": 1}])
            store.add_provenance(
                run_id,
                [{"slot": 0, "node": "1", "outcome": "silence", "tx": []}],
            )
            run_id2, replaced2 = store.upsert_run("f1", _info(records=20))
            assert replaced2
            assert run_id2 == run_id  # id is stable across re-ingest
            # re-ingest dropped all prior child rows
            assert store.metrics_for(run_id) == {}
            assert store.series_for(run_id, "s") == []
            assert store.phases_for(run_id) == []
            assert store.provenance_count(run_id) == 0
            assert store.runs()[0]["records"] == 20

    def test_distinct_fingerprints_distinct_rows(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            a, _ = store.upsert_run("f1", _info(created=1.0))
            b, _ = store.upsert_run("f2", _info(created=2.0))
            assert a != b
            assert len(store.runs()) == 2


class TestResolve:
    def test_latest_prev_id_and_prefix(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            a, _ = store.upsert_run("aaaa1111", _info(created=1.0))
            b, _ = store.upsert_run("bbbb2222", _info(created=2.0))
            assert store.resolve_run("latest")["id"] == b
            assert store.resolve_run("prev")["id"] == a
            assert store.resolve_run(str(a))["id"] == a
            assert store.resolve_run("bbbb")["id"] == b

    def test_empty_store_errors(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            with pytest.raises(ExperimentError, match="empty"):
                store.resolve_run("latest")

    def test_prev_requires_two(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            store.upsert_run("f1", _info())
            with pytest.raises(ExperimentError, match="previous"):
                store.resolve_run("prev")

    def test_unknown_and_ambiguous_prefixes(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            store.upsert_run("aaaa1111", _info(created=1.0))
            store.upsert_run("aaaa2222", _info(created=2.0))
            with pytest.raises(ExperimentError, match="no run"):
                store.resolve_run("zzzz")
            with pytest.raises(ExperimentError, match="ambiguous"):
                store.resolve_run("aaaa")


class TestProvenanceQueries:
    def test_lookup_by_engine_run(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            run_id, _ = store.upsert_run("f1", _info())
            store.add_provenance(
                run_id,
                [
                    {"engine_run": "r1", "slot": 3, "node": "v",
                     "outcome": "collision", "tx": ["a", "b"]},
                    {"engine_run": "r2", "slot": 3, "node": "v",
                     "outcome": "delivered", "tx": ["a"]},
                ],
            )
            both = store.provenance_at(run_id, "v", 3)
            assert len(both) == 2
            only_r2 = store.provenance_at(run_id, "v", 3, "r2")
            assert len(only_r2) == 1
            assert only_r2[0]["outcome"] == "delivered"
            assert store.provenance_count(run_id) == 2
            assert [e["slot"] for e in store.provenance_for_node(run_id, "v")] == [3, 3]


class TestBench:
    def test_bench_points_idempotent_and_ordered(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            p1 = {"schema": "repro-bench-engine/1", "recorded": 2.0,
                  "combined_slots_per_sec": 100.0}
            p2 = {"schema": "repro-bench-engine/1", "recorded": 1.0,
                  "combined_slots_per_sec": 90.0}
            assert store.add_bench_point("b1", p1)
            assert store.add_bench_point("b2", p2)
            assert not store.add_bench_point("b1", p1)  # duplicate ignored
            points = store.bench_points()
            assert [p["combined_slots_per_sec"] for p in points] == [90.0, 100.0]


class TestTrendOrdering:
    def test_metric_trend_orders_by_created(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            # Inserted out of chronological order on purpose.
            b, _ = store.upsert_run("f2", _info(created=2.0))
            a, _ = store.upsert_run("f1", _info(created=1.0))
            store.add_metrics(a, {"slots_per_sec": 10.0})
            store.add_metrics(b, {"slots_per_sec": 20.0})
            trend = store.metric_trend("slots_per_sec")
            assert [row["value"] for row in trend] == [10.0, 20.0]


class TestConcurrentIngest:
    """Satellite: the run store serves simultaneous writers — WAL mode,
    a busy timeout, and an idempotent write-locked upsert."""

    def test_wal_mode_and_busy_timeout(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            (mode,) = store.conn.execute("PRAGMA journal_mode").fetchone().values()
            assert mode == "wal"
            (timeout,) = store.conn.execute("PRAGMA busy_timeout").fetchone().values()
            assert timeout >= 1000

    def test_two_simultaneous_writers_upsert_one_row(self, tmp_path):
        import threading

        path = tmp_path / "runs.db"
        barrier = threading.Barrier(2)
        outcomes = {}

        def ingest(name):
            with RunStore(path) as store:
                barrier.wait()  # maximize the race on the existence check
                for _ in range(5):
                    outcomes[name] = store.upsert_run("same-fp", _info())

        threads = [
            threading.Thread(target=ingest, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        with RunStore(path) as store:
            rows = store.conn.execute(
                "SELECT id FROM runs WHERE fingerprint = 'same-fp'"
            ).fetchall()
            assert len(rows) == 1  # exactly one run row survived the race
        # Both writers finished (no "database is locked" escape).
        assert set(outcomes) == {"t0", "t1"}

    def test_concurrent_writers_across_processes(self, tmp_path):
        import subprocess
        import sys

        path = tmp_path / "runs.db"
        script = (
            "import sys\n"
            "from repro.obs import RunStore\n"
            "info = {'command': 'gap', 'seed': 1, 'created': 100.0,\n"
            "        'git_sha': 'abc', 'host': 'h', 'package_version': '0',\n"
            "        'config_fingerprint': 'cfg', 'config_json': '{}',\n"
            "        'source_path': 'x.jsonl', 'records': 10,\n"
            "        'ingested_at': 200.0}\n"
            "with RunStore(sys.argv[1]) as store:\n"
            "    for _ in range(20):\n"
            "        store.upsert_run('same-fp', info)\n"
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(path)])
            for _ in range(2)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0

        with RunStore(path) as store:
            rows = store.conn.execute(
                "SELECT id FROM runs WHERE fingerprint = 'same-fp'"
            ).fetchall()
        assert len(rows) == 1
