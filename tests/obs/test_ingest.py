"""Ingestion: telemetry logs, manifest sidecars, bench files."""

import json

import pytest

from repro.errors import ExperimentError
from repro.obs import RunStore, fingerprint_of, ingest_bench_file, ingest_log, ingest_path


def _write_log(path, records):
    with path.open("w", encoding="utf-8") as stream:
        for record in records:
            stream.write(json.dumps(record) + "\n")
    return path


def _log_records(*, with_prov=False, slots=100, wall=0.5):
    records = [
        {"kind": "manifest", "ts": 1.0, "schema": "repro-telemetry/1",
         "version": 1, "python": "3.11", "command": "gap", "seed": 7,
         "created": 50.0, "git_sha": "cafe", "host": "box",
         "package_version": "0.1", "config_fingerprint": "deadbeef",
         "config": {"n": 4}},
        {"kind": "run_begin", "ts": 1.1, "run": "r1", "nodes": 4,
         "edges": 3, "seed": 7},
        {"kind": "phase", "ts": 1.2, "proto": "decay", "node": 0, "index": 0,
         "slot": 9, "start_slot": 0},
        {"kind": "run_end", "ts": 1.5, "run": "r1", "slots": slots,
         "transmissions": 40, "collisions": 8, "deliveries": 3,
         "wall_s": wall},
    ]
    if with_prov:
        records.insert(3, {"kind": "prov", "ts": 1.3, "run": "r1", "slot": 2,
                           "node": 1, "outcome": "collision", "tx": [0, 2]})
    return records


class TestLogIngest:
    def test_aggregates_and_series(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", _log_records(with_prov=True))
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            assert result.kind == "log"
            assert not result.replaced
            assert result.provenance_rows == 1
            metrics = store.metrics_for(result.run_id)
            assert metrics["slots"] == 100
            assert metrics["collisions"] == 8
            assert metrics["nodes_total"] == 4
            assert metrics["collisions_per_node"] == pytest.approx(2.0)
            assert metrics["slots_per_sec"] == pytest.approx(200.0)
            phases = store.phases_for(result.run_id)
            assert phases[0]["proto"] == "decay"

    def test_reingest_is_idempotent(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", _log_records())
        with RunStore(tmp_path / "runs.db") as store:
            first = ingest_log(store, log)
            second = ingest_log(store, log)
            assert second.replaced
            assert second.run_id == first.run_id
            assert len(store.runs()) == 1

    def test_sidecar_manifest_preferred(self, tmp_path):
        records = _log_records()[1:]  # no inline manifest
        log = _write_log(tmp_path / "run.jsonl", records)
        sidecar = tmp_path / "run.jsonl.manifest.json"
        sidecar.write_text(json.dumps(
            {"command": "sidecar-cmd", "seed": 9, "created": 60.0}
        ), encoding="utf-8")
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            run = store.resolve_run(result.run_id)
            assert run["command"] == "sidecar-cmd"
            assert run["seed"] == 9

    def test_provenance_engine_run_tag_kept(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", _log_records(with_prov=True))
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            entries = store.provenance_at(result.run_id, "1", 2)
            assert entries[0]["engine_run"] == "r1"
            assert json.loads(entries[0]["tx"]) == ["0", "2"]

    def test_fingerprint_stable_without_manifest(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", _log_records()[1:])
        assert fingerprint_of(None, log) == fingerprint_of(None, log)


class TestBenchIngest:
    def _payload(self, value, recorded=1.0):
        return {"schema": "repro-bench-engine/1", "recorded": recorded,
                "git_sha": "abc", "scale": "quick",
                "combined_slots_per_sec": value,
                "topologies": {"grid-16x16": {"slots_per_sec": value}}}

    def test_single_object(self, tmp_path):
        bench = tmp_path / "BENCH_engine.json"
        bench.write_text(json.dumps(self._payload(100.0)), encoding="utf-8")
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_bench_file(store, bench)
            assert result.kind == "bench"
            assert result.bench_points == 1
            # idempotent
            assert ingest_bench_file(store, bench).bench_points == 0

    def test_history_jsonl(self, tmp_path):
        history = tmp_path / "bench_history.jsonl"
        with history.open("w", encoding="utf-8") as stream:
            for i in range(3):
                stream.write(json.dumps(self._payload(100.0 + i, recorded=float(i))) + "\n")
        with RunStore(tmp_path / "runs.db") as store:
            assert ingest_bench_file(store, history).bench_points == 3
            assert len(store.bench_points()) == 3

    def test_not_a_bench_file(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"schema": "other/1"}', encoding="utf-8")
        with RunStore(tmp_path / "runs.db") as store:
            with pytest.raises(ExperimentError, match="not a bench record"):
                ingest_bench_file(store, bogus)


class TestAutoDetect:
    def test_ingest_path_detects_bench_vs_log(self, tmp_path):
        bench = tmp_path / "BENCH_engine.json"
        bench.write_text(json.dumps(
            {"schema": "repro-bench-engine/1", "combined_slots_per_sec": 5.0}
        ), encoding="utf-8")
        log = _write_log(tmp_path / "run.jsonl", _log_records())
        with RunStore(tmp_path / "runs.db") as store:
            assert ingest_path(store, bench).kind == "bench"
            assert ingest_path(store, log).kind == "log"

    def test_missing_file(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            with pytest.raises(ExperimentError, match="no such file"):
                ingest_path(store, tmp_path / "absent.jsonl")


class TestFleetIngest:
    """Satellite: PR 5/7 record kinds land as per-run fabric aggregates."""

    def _fleet_records(self):
        return [
            {"kind": "fabric_begin", "ts": 0.0, "spec": "slow-squares",
             "workers": 2, "chunks": 2},
            {"kind": "lease", "ts": 0.2, "event": "claim", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "lease", "ts": 0.3, "event": "takeover", "worker": "w0",
             "index": 1, "fence": 2},
            {"kind": "lease", "ts": 0.4, "event": "fence_reject",
             "worker": "w1", "index": 1, "fence": 1},
            {"kind": "lease", "ts": 0.5, "event": "commit", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "alert", "ts": 0.6, "source": "monitor", "seq": 1,
             "rule": "slot-bound", "severity": "error", "message": "late"},
            {"kind": "chaos_trial", "ts": 0.7, "arm": "jam", "seed": 3,
             "success": True},
            {"kind": "metrics", "ts": 0.8, "snapshot": {
                "commit_total": {"kind": "counter", "series": [
                    {"labels": {"worker": "w0"}, "value": 1.0}]},
                "heartbeat_lag_seconds": {"kind": "histogram", "series": [
                    {"labels": {"worker": "w0"}, "count": 3, "sum": 0.01,
                     "buckets": [[0.1, 3], ["+Inf", 3]]}]}}},
            {"kind": "fabric_end", "ts": 1.0, "chunks": 2, "wall_s": 1.0},
        ]

    def test_fabric_aggregates_land_as_metrics(self, tmp_path):
        log = _write_log(tmp_path / "fleet.jsonl", self._fleet_records())
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            metrics = store.metrics_for(result.run_id)
        assert metrics["fabric.runs"] == 1.0
        assert metrics["fabric.chunks"] == 2.0
        assert metrics["fabric.workers"] == 2.0
        assert metrics["fabric.takeovers"] == 1.0
        assert metrics["fabric.fence_rejects"] == 1.0
        assert metrics["fabric.lease.claim"] == 1.0
        assert metrics["fabric.lease.commit"] == 1.0
        assert metrics["alerts"] == 1.0
        assert metrics["chaos_trials"] == 1.0
        # Registry totals from the last snapshot (histograms as counts).
        assert metrics["fleet.commit_total"] == 1.0
        assert metrics["fleet.heartbeat_lag_seconds"] == 3.0

    def test_plain_logs_grow_no_fabric_metrics(self, tmp_path):
        log = _write_log(tmp_path / "plain.jsonl", _log_records())
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            metrics = store.metrics_for(result.run_id)
        assert not any(name.startswith(("fabric.", "fleet."))
                       for name in metrics)


class TestPerfIngest:
    def _perf_records(self):
        return _log_records() + [
            {"kind": "perf_profile", "ts": 1.6, "samples": 40, "hz": 97,
             "dur_s": 0.5, "stacks": {"engine.run;engine.py:run": 30,
                                      "main": 10},
             "stacks_dropped": 0},
            {"kind": "perf_span", "ts": 1.6, "label": "engine.run",
             "count": 2, "secs": 0.31, "samples": 30,
             "mem_peak_kb": 128.5, "mem_net_kb": 1.25},
            {"kind": "perf_span", "ts": 1.6, "label": "resolve.kernel",
             "count": 8, "secs": 0.11, "samples": 9,
             "mem_peak_kb": 0.0, "mem_net_kb": 0.0},
            {"kind": "profile", "ts": 1.7, "sort": "cumulative", "top": [
                {"func": "/deep/path/engine.py:100(run)", "calls": 2,
                 "tottime_s": 0.2, "cumtime_s": 0.4},
                {"func": "resolve.py:10(_resolve)", "calls": 200,
                 "tottime_s": 0.15, "cumtime_s": 0.15},
            ]},
        ]

    def test_perf_metrics_derived(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", self._perf_records())
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            metrics = store.metrics_for(result.run_id)
        assert metrics["perf.samples"] == 40
        assert metrics["perf.sample_wall_s"] == pytest.approx(0.5)
        assert metrics["perf.span.engine.run.secs"] == pytest.approx(0.31)
        assert metrics["perf.span.engine.run.samples"] == 30
        assert metrics["perf.span.engine.run.mem_peak_kb"] == pytest.approx(128.5)
        # A zero memory peak stays out of the metric namespace.
        assert "perf.span.resolve.kernel.mem_peak_kb" not in metrics
        assert metrics["perf.span.resolve.kernel.secs"] == pytest.approx(0.11)

    def test_profile_hotspots_become_metrics(self, tmp_path):
        log = _write_log(tmp_path / "run.jsonl", self._perf_records())
        with RunStore(tmp_path / "runs.db") as store:
            result = ingest_log(store, log)
            metrics = store.metrics_for(result.run_id)
        assert metrics["perf.hotspot.rows"] == 2
        # Long paths collapse to basename; names stay queryable.
        assert metrics["perf.hotspot.engine.py:100(run).cumtime_s"] == pytest.approx(0.4)
        assert metrics["perf.hotspot.resolve.py:10(_resolve).tottime_s"] == pytest.approx(0.15)

    def test_perf_overview_query(self, tmp_path):
        from repro.obs import perf_overview

        log = _write_log(tmp_path / "run.jsonl", self._perf_records())
        with RunStore(tmp_path / "runs.db") as store:
            ingest_log(store, log)
            overview = perf_overview(store)
        assert overview["samples"] == 40
        assert overview["spans"][0]["label"] == "engine.run"  # heaviest first
        assert overview["hotspots"][0]["func"] == "engine.py:100(run)"

    def test_perf_overview_raises_without_perf(self, tmp_path):
        from repro.obs import perf_overview

        log = _write_log(tmp_path / "run.jsonl", _log_records())
        with RunStore(tmp_path / "runs.db") as store:
            ingest_log(store, log)
            with pytest.raises(ExperimentError, match="no perf metrics"):
                perf_overview(store)
