"""Tests for the [BGI89]-style single-hop-on-multi-hop emulation."""

import pytest

from repro.emulation import (
    ActiveCountProtocol,
    ChannelFeedback,
    MaxFindingProtocol,
    run_emulated,
    run_single_hop,
)
from repro.errors import ProtocolError
from repro.graphs import Graph, grid, line, ring


class TestChannelFeedback:
    def test_message_requires_payload(self):
        with pytest.raises(ProtocolError):
            ChannelFeedback("message")

    def test_silence_carries_nothing(self):
        with pytest.raises(ProtocolError):
            ChannelFeedback("silence", "m")


class TestDirectSingleHop:
    def test_max_finding_various_active_sets(self):
        for active in ({0}, {7}, {2, 5}, set(range(8))):
            protos = {
                i: MaxFindingProtocol(i, 3, active=(i in active)) for i in range(8)
            }
            out = run_single_hop(protos, 10)
            winners = {v["winner"] for v in out.values()}
            assert winners == {max(active)}
            leaders = [i for i, v in out.items() if v["is_winner"]]
            assert leaders == [max(active)]

    def test_max_finding_no_active_stations(self):
        protos = {i: MaxFindingProtocol(i, 3, active=False) for i in range(8)}
        out = run_single_hop(protos, 10)
        assert all(v["winner"] is None for v in out.values())

    def test_count_exact_for_every_subset_size(self):
        import itertools

        for active in [set(), {3}, {0, 7}, {1, 2, 3}, set(range(8))]:
            protos = {
                i: ActiveCountProtocol(i, (0, 8), active=(i in active))
                for i in range(8)
            }
            out = run_single_hop(protos, 200)
            for v in out.values():
                assert v["count"] == len(active)
                assert v["roster"] == sorted(active)

    def test_all_stations_agree(self):
        protos = {i: ActiveCountProtocol(i, (0, 16), active=(i % 3 == 0))
                  for i in range(16)}
        out = run_single_hop(protos, 400)
        rosters = {tuple(v["roster"]) for v in out.values()}
        assert len(rosters) == 1

    def test_empty_station_set_rejected(self):
        with pytest.raises(ProtocolError):
            run_single_hop({}, 5)

    def test_protocol_validation(self):
        with pytest.raises(ProtocolError):
            MaxFindingProtocol(8, 3)
        with pytest.raises(ProtocolError):
            ActiveCountProtocol(9, (0, 8))
        with pytest.raises(ProtocolError):
            ActiveCountProtocol(0, (4, 4))


class TestEmulatedChannel:
    """The headline property: the emulated channel computes the same
    answers as the ideal single-hop CD channel, on multi-hop networks
    with no collision detection at all."""

    @pytest.mark.parametrize(
        "g", [line(6), ring(7), grid(3, 3)], ids=["line", "ring", "grid"]
    )
    def test_max_finding_matches_direct(self, g):
        nodes = list(g.nodes)
        active = {nodes[1], nodes[-1]}
        bits = max(1, (max(nodes) + 1 - 1).bit_length())
        direct = run_single_hop(
            {i: MaxFindingProtocol(i, bits, active=(i in active)) for i in nodes},
            bits + 1,
        )
        emulated = run_emulated(
            g,
            {i: MaxFindingProtocol(i, bits, active=(i in active)) for i in nodes},
            max_rounds=bits + 1,  # presence round + one per bit
            seed=3,
            epsilon=0.1,
        ).node_results()
        for node in nodes:
            assert emulated[node]["winner"] == direct[node]["winner"]

    def test_count_matches_direct(self):
        g = grid(3, 3)
        active = {2, 5, 8}
        direct = run_single_hop(
            {i: ActiveCountProtocol(i, (0, 9), active=(i in active)) for i in g.nodes},
            100,
        )
        emulated = run_emulated(
            g,
            {i: ActiveCountProtocol(i, (0, 9), active=(i in active)) for i in g.nodes},
            max_rounds=40,
            seed=5,
            epsilon=0.1,
        ).node_results()
        for node in g.nodes:
            assert emulated[node] == direct[node]

    def test_silence_round_is_exact(self):
        # Zero transmitters: silence must be reported deterministically
        # (no transmissions exist anywhere to be lost).
        g = line(5)
        protos = {i: MaxFindingProtocol(i, 3, active=False) for i in g.nodes}
        result = run_emulated(g, protos, max_rounds=3, seed=1)
        assert result.metrics.transmissions == 0
        for out in result.node_results().values():
            assert out["winner"] is None

    def test_requires_integer_ids(self):
        g = Graph(edges=[("a", "b")])
        protos = {
            "a": MaxFindingProtocol(0, 2),
            "b": MaxFindingProtocol(1, 2),
        }
        with pytest.raises(ProtocolError):
            run_emulated(g, protos, max_rounds=1)

    def test_protocol_coverage_required(self):
        g = line(3)
        with pytest.raises(ProtocolError):
            run_emulated(g, {0: MaxFindingProtocol(0, 2)}, max_rounds=1)

    def test_reproducible(self):
        g = ring(6)
        make = lambda: {  # noqa: E731
            i: MaxFindingProtocol(i, 3, active=(i in {1, 4})) for i in g.nodes
        }
        a = run_emulated(g, make(), max_rounds=3, seed=11)
        b = run_emulated(g, make(), max_rounds=3, seed=11)
        assert a.node_results() == b.node_results()
        assert a.slots == b.slots
