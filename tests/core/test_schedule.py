"""Tests for centralized broadcast schedules."""

import random

import pytest

from repro.core.schedule import (
    extract_schedule,
    greedy_layer_schedule,
    schedule_length,
    sequential_tree_schedule,
    simulate_schedule,
    verify_schedule,
)
from repro.errors import GraphError, ReproError
from repro.graphs import Graph, c_n, complete, grid, line, random_gnp, star
from repro.protocols.decay_broadcast import run_decay_broadcast


class TestSimulateSchedule:
    def test_line_sequential(self):
        g = line(3)
        schedule = [frozenset({0}), frozenset({1})]
        informed = simulate_schedule(g, 0, schedule)
        assert informed == {0: -1, 1: 0, 2: 1}

    def test_collision_blocks_delivery(self):
        # Source 3 informs 1 and 2 at slot 0; both transmit at slot 1
        # and collide at hub 0, which therefore stays uninformed.
        g = Graph(edges=[(3, 1), (3, 2), (0, 1), (0, 2)])
        schedule = [frozenset({3}), frozenset({1, 2})]
        informed = simulate_schedule(g, 3, schedule)
        assert informed == {3: -1, 1: 0, 2: 0}

    def test_uninformed_transmitter_rejected(self):
        g = line(3)
        with pytest.raises(ReproError, match="before being informed"):
            simulate_schedule(g, 0, [frozenset({2})])

    def test_same_slot_informed_cannot_transmit(self):
        # Node 1 is informed at slot 0 and may transmit at slot 1, not 0.
        g = line(3)
        with pytest.raises(ReproError):
            simulate_schedule(g, 0, [frozenset({0, 1})])


class TestVerifySchedule:
    def test_valid(self):
        g = line(4)
        schedule = [frozenset({0}), frozenset({1}), frozenset({2})]
        assert verify_schedule(g, 0, schedule)

    def test_incomplete(self):
        g = line(4)
        assert not verify_schedule(g, 0, [frozenset({0})])

    def test_invalid(self):
        g = line(4)
        assert not verify_schedule(g, 0, [frozenset({3})])


class TestSequentialTreeSchedule:
    @pytest.mark.parametrize(
        "g",
        [line(8), grid(4, 4), star(6), complete(5), c_n(10, {2, 7})],
        ids=["line", "grid", "star", "clique", "c_n"],
    )
    def test_always_valid(self, g):
        schedule = sequential_tree_schedule(g, 0)
        assert verify_schedule(g, 0, schedule)

    def test_length_at_most_n(self):
        for seed in range(3):
            g = random_gnp(40, 0.15, random.Random(seed))
            schedule = sequential_tree_schedule(g, 0)
            assert schedule_length(schedule) <= g.num_nodes()

    def test_single_node(self):
        g = Graph(nodes=[0])
        schedule = sequential_tree_schedule(g, 0)
        assert verify_schedule(g, 0, schedule)

    def test_disconnected_rejected(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            sequential_tree_schedule(g, 0)


class TestGreedyLayerSchedule:
    @pytest.mark.parametrize(
        "g",
        [line(8), grid(5, 5), star(9), complete(6), c_n(12, {3, 4, 9})],
        ids=["line", "grid", "star", "clique", "c_n"],
    )
    def test_always_valid(self, g):
        schedule = greedy_layer_schedule(g, 0)
        assert verify_schedule(g, 0, schedule)

    def test_valid_with_rng(self):
        g = random_gnp(50, 0.1, random.Random(4))
        schedule = greedy_layer_schedule(g, 0, rng=random.Random(9))
        assert verify_schedule(g, 0, schedule)

    def test_beats_sequential_on_dense_layers(self):
        # On a star, greedy needs 1 slot; sequential also 1. Use a
        # bipartite-ish dense random graph where parallelism pays off.
        g = random_gnp(60, 0.15, random.Random(2))
        greedy = greedy_layer_schedule(g, 0)
        sequential = sequential_tree_schedule(g, 0)
        assert schedule_length(greedy) <= schedule_length(sequential)

    def test_disconnected_rejected(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            greedy_layer_schedule(g, 0)


class TestExtractSchedule:
    def test_extracted_schedule_replays(self):
        g = random_gnp(30, 0.15, random.Random(11))
        result = run_decay_broadcast(
            g, source=0, seed=5, epsilon=0.05, record_trace=True
        )
        assert result.broadcast_succeeded(source=0)
        schedule = extract_schedule(result.trace, 0)
        assert verify_schedule(g, 0, schedule)

    def test_extracted_is_compact(self):
        g = grid(4, 4)
        result = run_decay_broadcast(
            g, source=0, seed=3, epsilon=0.05, record_trace=True
        )
        assert result.broadcast_succeeded(source=0)
        schedule = extract_schedule(result.trace, 0)
        assert schedule_length(schedule) <= result.slots
