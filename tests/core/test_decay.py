"""Tests for the Decay procedure state machine and game simulator."""

import random

import pytest

from repro.core.decay import DecayProcess, simulate_decay_game
from repro.errors import ProtocolError


class TestDecayProcess:
    def test_transmits_at_least_once(self):
        # p_continue=0: the coin says stop immediately, but the paper's
        # procedure sends "at least once!".
        proc = DecayProcess(5, "m", random.Random(0), p_continue=0.0)
        assert proc.wants_transmit() is True
        assert proc.wants_transmit() is False
        assert proc.transmissions_made == 1

    def test_transmits_at_most_k_times(self):
        # p_continue=1: the coin never says stop; the cap must bind.
        proc = DecayProcess(4, "m", random.Random(0), p_continue=1.0)
        pattern = [proc.wants_transmit() for _ in range(10)]
        assert pattern == [True] * 4 + [False] * 6
        assert proc.transmissions_made == 4

    def test_transmissions_contiguous_prefix(self):
        rng = random.Random(42)
        for _ in range(50):
            proc = DecayProcess(8, "m", rng)
            pattern = [proc.wants_transmit() for _ in range(8)]
            # Once False, always False.
            first_false = pattern.index(False) if False in pattern else 8
            assert all(pattern[:first_false])
            assert not any(pattern[first_false:])

    def test_geometric_distribution_of_length(self):
        # P(exactly j transmissions) = 2^-j for j < k.
        rng = random.Random(7)
        counts = {j: 0 for j in range(1, 11)}
        reps = 20000
        for _ in range(reps):
            proc = DecayProcess(10, "m", rng)
            while proc.wants_transmit():
                pass
            counts[proc.transmissions_made] += 1
        assert counts[1] / reps == pytest.approx(0.5, abs=0.02)
        assert counts[2] / reps == pytest.approx(0.25, abs=0.02)
        assert counts[3] / reps == pytest.approx(0.125, abs=0.015)

    def test_active_flag(self):
        proc = DecayProcess(1, "m", random.Random(0))
        assert proc.active
        proc.wants_transmit()
        assert not proc.active

    def test_invalid_k(self):
        with pytest.raises(ProtocolError):
            DecayProcess(0, "m", random.Random(0))

    def test_invalid_bias(self):
        with pytest.raises(ProtocolError):
            DecayProcess(3, "m", random.Random(0), p_continue=1.5)
        with pytest.raises(ProtocolError):
            DecayProcess(3, "m", random.Random(0), p_continue=-0.1)

    def test_message_stored(self):
        proc = DecayProcess(3, ("payload", 1), random.Random(0))
        assert proc.message == ("payload", 1)


class TestSimulateDecayGame:
    def test_zero_contenders_never_receive(self):
        assert simulate_decay_game(0, 10, random.Random(0)) is None

    def test_one_contender_receives_at_slot_zero(self):
        for seed in range(10):
            assert simulate_decay_game(1, 5, random.Random(seed)) == 0

    def test_two_contenders_never_slot_zero(self):
        for seed in range(50):
            result = simulate_decay_game(2, 8, random.Random(seed))
            assert result is None or result >= 1

    def test_result_within_window(self):
        rng = random.Random(1)
        for _ in range(200):
            result = simulate_decay_game(16, 8, rng)
            assert result is None or 0 <= result < 8

    def test_p_continue_zero_kills_everyone(self):
        # All d >= 2 contenders transmit once (collision) then stop.
        for seed in range(20):
            assert simulate_decay_game(4, 10, random.Random(seed), p_continue=0.0) is None

    def test_p_continue_one_floods_forever(self):
        # Nobody ever drops out: permanent collision.
        for seed in range(20):
            assert simulate_decay_game(4, 10, random.Random(seed), p_continue=1.0) is None

    def test_validation(self):
        with pytest.raises(ProtocolError):
            simulate_decay_game(-1, 5, random.Random(0))
        with pytest.raises(ProtocolError):
            simulate_decay_game(2, 0, random.Random(0))
