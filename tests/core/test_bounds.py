"""Tests for the paper's analytic quantities (Theorem 1, Lemma 3, Theorem 4)."""

import math
import random

import pytest

from repro.core.bounds import (
    bfs_slot_bound,
    decay_phase_length,
    expected_transmissions_bound,
    log2_ceil,
    m_epsilon,
    num_phases,
    p_exact,
    p_infinity,
    t_epsilon,
    theorem4_slot_bound,
    theorem4_termination_bound,
)
from repro.core.decay import simulate_decay_game
from repro.errors import ReproError


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "x,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10), (1025, 11)],
    )
    def test_integers(self, x, expected):
        assert log2_ceil(x) == expected

    def test_float(self):
        assert log2_ceil(2.5) == 2
        assert log2_ceil(4.0) == 2

    def test_below_one_rejected(self):
        with pytest.raises(ReproError):
            log2_ceil(0.5)


class TestProtocolParameters:
    def test_decay_phase_length(self):
        # k = 2*ceil(log Delta)
        assert decay_phase_length(2) == 2
        assert decay_phase_length(4) == 4
        assert decay_phase_length(5) == 6
        assert decay_phase_length(16) == 8

    def test_decay_phase_length_degenerate(self):
        assert decay_phase_length(1) == 1  # clamped: Decay sends at least once

    def test_num_phases_paper_default(self):
        # t = ceil(2*log2(N/eps))
        assert num_phases(16, 1.0) == 2 * 4
        assert num_phases(16, 0.5) == 10

    def test_num_phases_lemma2_variant(self):
        assert num_phases(16, 1.0, multiplier=1.0) == 4

    def test_num_phases_validation(self):
        with pytest.raises(ReproError):
            num_phases(0, 0.5)
        with pytest.raises(ReproError):
            num_phases(4, 0.0)
        with pytest.raises(ReproError):
            num_phases(4, 2.0)

    def test_m_epsilon(self):
        assert m_epsilon(16, 1.0) == 4
        assert m_epsilon(16, 0.25) == 6
        assert m_epsilon(1, 1.0) == 1  # clamped to >= 1

    def test_t_epsilon_dominant_terms(self):
        # For huge D the 2D term dominates; for tiny D the M^2 term does.
        n, eps = 256, 0.1
        m = m_epsilon(n, eps)
        assert t_epsilon(n, 10_000, eps) >= 2 * 10_000
        assert t_epsilon(n, 0, eps) == 5 * m * m

    def test_t_epsilon_matches_formula(self):
        n, d, eps = 128, 9, 0.1
        m = m_epsilon(n, eps)
        expected = math.ceil(2 * d + 5 * m * max(math.sqrt(d), m))
        assert t_epsilon(n, d, eps) == expected

    def test_theorem4_bounds_scale(self):
        base = theorem4_slot_bound(64, 4, 8, 0.1)
        assert theorem4_slot_bound(64, 8, 8, 0.1) > base  # more diameter
        assert theorem4_slot_bound(64, 4, 64, 0.1) > base  # more degree
        assert theorem4_slot_bound(64, 4, 8, 0.01) > base  # tighter eps

    def test_termination_bound_exceeds_reception_bound(self):
        assert theorem4_termination_bound(64, 4, 8, 0.1) > theorem4_slot_bound(
            64, 4, 8, 0.1
        )

    def test_expected_transmissions_bound(self):
        assert expected_transmissions_bound(10, 16, 1.0) == 2 * 10 * 4

    def test_bfs_slot_bound(self):
        # 2 * D * ceil(log Delta) * ceil(log(N/eps))
        assert bfs_slot_bound(16, 3, 4, 1.0) == 3 * 4 * 4


class TestPExact:
    def test_degenerate_cases(self):
        assert p_exact(5, 0) == 0.0
        assert p_exact(5, 1) == 1.0

    def test_d2_k2_is_half(self):
        assert p_exact(2, 2) == pytest.approx(0.5)

    def test_monotone_in_k(self):
        for d in (2, 3, 8, 17):
            values = [p_exact(k, d) for k in range(1, 15)]
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_theorem1_ii_at_k_2logd(self):
        # P(k, d) >= 1/2 for k = 2*ceil(log d) (equality at d = 2).
        for d in (2, 3, 4, 5, 6, 10, 16, 33, 64, 100):
            k = decay_phase_length(d)
            assert p_exact(k, d) >= 0.5 - 1e-12, d

    def test_converges_to_p_infinity(self):
        for d in (2, 3, 5, 8, 20):
            assert p_exact(60, d) == pytest.approx(p_infinity(d), abs=1e-6)

    def test_probability_range(self):
        for d in range(0, 30):
            for k in (1, 2, 5, 9):
                p = p_exact(k, d)
                assert 0.0 <= p <= 1.0

    def test_k1_only_d1_succeeds(self):
        assert p_exact(1, 1) == 1.0
        assert p_exact(1, 2) == 0.0
        assert p_exact(1, 7) == 0.0

    def test_matches_monte_carlo(self):
        rng = random.Random(123)
        d, k = 12, 8
        reps = 30000
        hits = sum(
            1 for _ in range(reps) if simulate_decay_game(d, k, rng) is not None
        )
        assert hits / reps == pytest.approx(p_exact(k, d), abs=0.01)

    def test_biased_coin(self):
        # With p_continue = 0 or 1 nothing resolves (d >= 2).
        assert p_exact(10, 4, p_continue=0.0) == 0.0
        assert p_exact(10, 4, p_continue=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            p_exact(0, 2)
        with pytest.raises(ReproError):
            p_exact(2, -1)


class TestPInfinity:
    def test_base_cases(self):
        assert p_infinity(0) == 0.0
        assert p_infinity(1) == 1.0

    def test_paper_induction_basis(self):
        # The paper computes P(inf, 2) = 2/3 explicitly.
        assert p_infinity(2) == pytest.approx(2 / 3)

    def test_theorem1_i_two_thirds_bound(self):
        for d in range(2, 200):
            assert p_infinity(d) >= 2 / 3 - 1e-12, d

    def test_limit_value_known(self):
        # The limit for large d is ~0.72135 (well known for this process).
        assert p_infinity(150) == pytest.approx(0.7213, abs=0.001)

    def test_dominates_exact(self):
        for d in (2, 5, 12):
            assert p_infinity(d) >= p_exact(10, d) - 1e-12

    def test_degenerate_bias(self):
        assert p_infinity(3, p_continue=0.0) == 0.0
        assert p_infinity(3, p_continue=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            p_infinity(-1)
