"""Array ``decay_step`` vs the scalar ``DecayProcess`` state machine.

``decay_step`` is the piece of the paper's Decay procedure the
vectorized backend executes per slot; its contract is that each array
element evolves — and consumes coins — exactly as one
:class:`~repro.core.decay.DecayProcess` would.  Driving both from
duplicate per-node random streams must therefore reproduce the scalar
machine bit for bit, including when draws happen at all.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.decay import DecayProcess, decay_step
from repro.errors import ProtocolError


def _paired_streams(n, tag):
    return (
        [random.Random(tag * 1009 + i) for i in range(n)],
        [random.Random(tag * 1009 + i) for i in range(n)],
    )


@pytest.mark.parametrize("k", [1, 2, 4, 6])
@pytest.mark.parametrize("p_continue", [0.0, 0.25, 0.5, 1.0])
def test_matches_scalar_machine_slot_for_slot(k, p_continue):
    n = 32
    scalar_rngs, array_rngs = _paired_streams(n, k * 100 + int(p_continue * 10))
    procs = [DecayProcess(k, "m", rng, p_continue=p_continue) for rng in scalar_rngs]
    active = np.ones(n, dtype=bool)
    sent = np.zeros(n, dtype=np.int64)

    def draw(mask):
        return np.array(
            [array_rngs[i].random() for i in np.flatnonzero(mask)]
        )

    for _ in range(k + 2):
        expected = np.array([proc.wants_transmit() for proc in procs])
        got = decay_step(active, sent, k, draw, p_continue=p_continue)
        assert np.array_equal(got, expected)
        assert np.array_equal(active, np.array([proc.active for proc in procs]))
    assert not active.any()  # "at most k times" exhausted everywhere


def test_draw_consumption_matches_the_scalar_machine():
    """Coins are flipped for exactly the nodes (and slots) the scalar
    machine flips them — the invariant backend RNG parity rests on."""
    n = 8
    k = 4
    draws = []

    def draw(mask):
        draws.append(int(mask.sum()))
        return np.full(int(mask.sum()), 0.0)  # always continue (p=0.5)

    active = np.ones(n, dtype=bool)
    sent = np.zeros(n, dtype=np.int64)
    for _ in range(k):
        decay_step(active, sent, k, draw)
    # A node flips while active and sent+1 < k: slots 0..k-2 inclusive.
    assert draws == [n] * (k - 1)


def test_k1_never_draws():
    def draw(mask):  # pragma: no cover - must not be reached
        raise AssertionError("Decay(1) flips no coin")

    active = np.ones(5, dtype=bool)
    sent = np.zeros(5, dtype=np.int64)
    transmit = decay_step(active, sent, 1, draw)
    assert transmit.all()
    assert not active.any()


def test_validation_mirrors_decay_process():
    active = np.ones(2, dtype=bool)
    sent = np.zeros(2, dtype=np.int64)
    with pytest.raises(ProtocolError):
        decay_step(active, sent, 0, lambda mask: np.zeros(int(mask.sum())))
    with pytest.raises(ProtocolError):
        decay_step(
            active, sent, 2, lambda mask: np.zeros(int(mask.sum())), p_continue=1.5
        )
