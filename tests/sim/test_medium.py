"""Tests for the radio medium semantics (Definition 1, rule 3)."""

import pickle

from repro.sim import COLLISION, SILENCE, CollisionDetectingMedium, RadioMedium


class TestRadioMedium:
    def setup_method(self):
        self.medium = RadioMedium()

    def test_single_transmitter_delivers(self):
        assert self.medium.resolve(0, [1], {1: "hello"}) == "hello"

    def test_no_transmitter_is_silence(self):
        assert self.medium.resolve(0, [], {}) is SILENCE

    def test_collision_is_silence_indistinguishable(self):
        # The paper's core assumption: conflicts are NOT detectable.
        two = self.medium.resolve(0, [1, 2], {1: "a", 2: "b"})
        zero = self.medium.resolve(0, [], {})
        assert two is SILENCE and zero is SILENCE
        assert two is zero

    def test_flag(self):
        assert RadioMedium.detects_collisions is False

    def test_none_payload_distinguishable_from_silence(self):
        # Protocols may legally send None as a message.
        assert self.medium.resolve(0, [1], {1: None}) is None
        assert self.medium.resolve(0, [1], {1: None}) is not SILENCE


class TestCollisionDetectingMedium:
    def setup_method(self):
        self.medium = CollisionDetectingMedium()

    def test_single_transmitter_delivers(self):
        assert self.medium.resolve(0, [1], {1: "x"}) == "x"

    def test_silence(self):
        assert self.medium.resolve(0, [], {}) is SILENCE

    def test_collision_detected(self):
        assert self.medium.resolve(0, [1, 2], {1: "a", 2: "b"}) is COLLISION

    def test_collision_vs_silence_distinguishable(self):
        assert self.medium.resolve(0, [1, 2], {1: "a", 2: "b"}) is not SILENCE

    def test_flag(self):
        assert CollisionDetectingMedium.detects_collisions is True


class TestSentinels:
    def test_repr(self):
        assert repr(SILENCE) == "<SILENCE>"
        assert repr(COLLISION) == "<COLLISION>"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(SILENCE)) is SILENCE
        assert pickle.loads(pickle.dumps(COLLISION)) is COLLISION

    def test_distinct(self):
        assert SILENCE is not COLLISION
