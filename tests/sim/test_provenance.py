"""Causal slot provenance: opt-in recording, outcomes, explanations."""

from typing import Any

import pytest

from repro.graphs import line, star
from repro.sim import (
    Context,
    CrashFault,
    Engine,
    FaultSchedule,
    JamFault,
    LinkLossFault,
    NodeProgram,
    ProvenanceRecorder,
    Receive,
    Transmit,
)
from repro.sim.provenance import (
    COLLISION,
    DELIVERED,
    FAULT_SUPPRESSED,
    OUTCOMES,
    SILENCE,
    explain_entry,
    explain_missing,
)


class Beacon(NodeProgram):
    def __init__(self, message: Any = "b") -> None:
        self.message = message

    def act(self, ctx: Context) -> Any:
        return Transmit(self.message)


class Listener(NodeProgram):
    def act(self, ctx: Context) -> Any:
        return Receive()


def prov_run(graph, programs, initiators, slots, *, faults=None, seed=0):
    engine = Engine(
        graph, programs, initiators=initiators, faults=faults, seed=seed,
        record_provenance=True,
    )
    result = engine.run(slots)
    assert result.provenance is not None
    return result.provenance


class TestGating:
    def test_off_by_default_no_recorder(self):
        engine = Engine(line(2), {0: Beacon(), 1: Listener()}, initiators={0})
        assert engine._prov is None
        assert engine.run(2).provenance is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVENANCE", "1")
        engine = Engine(line(2), {0: Beacon(), 1: Listener()}, initiators={0})
        assert engine._prov is not None

    def test_env_var_zero_stays_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVENANCE", "0")
        engine = Engine(line(2), {0: Beacon(), 1: Listener()}, initiators={0})
        assert engine._prov is None

    def test_metrics_identical_with_and_without(self):
        def run(record):
            engine = Engine(
                line(3),
                {0: Beacon("m"), 1: Listener(), 2: Listener()},
                initiators={0},
                record_provenance=record,
            )
            return engine.run(4).metrics

        on, off = run(True), run(False)
        assert on.first_reception == off.first_reception
        assert on.transmissions == off.transmissions
        assert on.collisions == off.collisions
        assert on.deliveries == off.deliveries


class TestOutcomes:
    def test_delivery_records_lone_transmitter(self):
        prov = prov_run(line(2), {0: Beacon("m"), 1: Listener()}, {0}, 1)
        entry = prov.get(1, 0)
        assert entry is not None
        assert entry.outcome == DELIVERED
        assert entry.transmitters == (0,)

    def test_collision_records_transmitter_set(self):
        prov = prov_run(
            star(2), {0: Listener(), 1: Beacon("a"), 2: Beacon("b")}, {1, 2}, 1
        )
        entry = prov.get(0, 0)
        assert entry.outcome == COLLISION
        assert sorted(entry.transmitters) == [1, 2]

    def test_silence_when_nobody_transmits(self):
        prov = prov_run(line(2), {0: Listener(), 1: Listener()}, set(), 1)
        assert prov.get(0, 0).outcome == SILENCE
        assert prov.get(1, 0).outcome == SILENCE

    def test_jam_suppression(self):
        # 1 transmits to 0, but 2 (also audible to 0) jams.
        faults = FaultSchedule(jam_faults=[JamFault(node=2, start=0, end=2)])
        prov = prov_run(
            star(2), {0: Listener(), 1: Beacon("m"), 2: Listener()}, {1}, 1,
            faults=faults,
        )
        entry = prov.get(0, 0)
        assert entry.outcome in (FAULT_SUPPRESSED, COLLISION)
        if entry.outcome == FAULT_SUPPRESSED:
            assert entry.detail == "jamming"

    def test_crash_suppression(self):
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=1)])
        prov = prov_run(
            line(2), {0: Beacon("m"), 1: Listener()}, {0}, 1, faults=faults
        )
        entry = prov.get(1, 0)
        assert entry.outcome == FAULT_SUPPRESSED
        assert entry.detail == "crashed"

    def test_link_loss_suppression(self):
        faults = FaultSchedule(link_loss_faults=[LinkLossFault(p=1.0)])
        prov = prov_run(
            line(2), {0: Beacon("m"), 1: Listener()}, {0}, 1, faults=faults
        )
        entry = prov.get(1, 0)
        assert entry.outcome == FAULT_SUPPRESSED
        assert entry.detail == "link-loss"
        assert entry.transmitters == (0,)

    def test_all_outcomes_are_known(self):
        prov = prov_run(
            star(2), {0: Listener(), 1: Beacon("a"), 2: Beacon("b")}, {1, 2}, 2
        )
        for entry in prov:
            assert entry.outcome in OUTCOMES


class TestRecorderApi:
    def test_note_and_len(self):
        rec = ProvenanceRecorder()
        rec.note(0, "v", DELIVERED, ("u",))
        rec.note(1, "v", SILENCE)
        assert len(rec) == 2
        assert rec.get("v", 0).transmitters == ("u",)

    def test_for_node_is_slot_ordered(self):
        rec = ProvenanceRecorder()
        rec.note(5, "v", SILENCE)
        rec.note(1, "v", DELIVERED, ("u",))
        rec.note(3, "w", SILENCE)
        slots = [e.slot for e in rec.for_node("v")]
        assert slots == [1, 5]

    def test_note_forwards_to_telemetry(self):
        emitted = []

        class FakeTelemetry:
            def emit(self, kind, **fields):
                emitted.append((kind, fields))

        rec = ProvenanceRecorder(telemetry=FakeTelemetry())
        rec.note(2, "v", COLLISION, ("a", "b"))
        assert emitted == [
            ("prov", {"slot": 2, "node": "v", "outcome": COLLISION,
                      "tx": ["a", "b"]})
        ]


class TestExplain:
    def test_delivered_sentence(self):
        text = explain_entry("v", 3, DELIVERED, ("u",))
        assert "RECEIVED" in text and "only audible transmitter" in text

    def test_collision_sentence_counts_transmitters(self):
        text = explain_entry("v", 3, COLLISION, ("a", "b", "c"))
        assert "COLLISION" in text and "3 audible neighbours" in text

    def test_silence_sentence(self):
        assert "SILENCE" in explain_entry("v", 3, SILENCE, ())

    def test_fault_sentence_names_cause(self):
        text = explain_entry("v", 3, FAULT_SUPPRESSED, ("u",), "jamming")
        assert "FAULT" in text and "jamming" in text

    def test_recorder_explain_missing(self):
        rec = ProvenanceRecorder()
        assert rec.explain("v", 9) == explain_missing("v", 9)

    def test_engine_run_explains_delivery(self):
        prov = prov_run(line(2), {0: Beacon("m"), 1: Listener()}, {0}, 1)
        assert "RECEIVED" in prov.explain(1, 0)
