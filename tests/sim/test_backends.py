"""Backend selection rules and the no-NumPy degradation path."""

import sys

import pytest

from repro.errors import SimulationError
from repro.sim import backends
from repro.sim.backends import (
    BACKENDS,
    BackendUnavailable,
    available_backends,
    numpy_available,
    resolve_backend,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


class TestResolution:
    def test_none_defaults_to_reference(self):
        assert resolve_backend(None) == "reference"

    def test_explicit_reference(self):
        assert resolve_backend("reference") == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend("cuda")

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        resolved = resolve_backend(None)
        assert resolved in ("reference", "numpy")
        assert resolved == ("numpy" if numpy_available() else "reference")

    def test_blank_env_var_means_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert resolve_backend(None) == "reference"

    def test_env_var_validated_like_an_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend(None)

    def test_backends_tuple_is_the_cli_choice_set(self):
        assert BACKENDS == ("reference", "numpy", "auto")


class TestWithNumpy:
    """These run only where NumPy imports (the fast-extra CI leg)."""

    pytestmark = pytest.mark.skipif(
        not numpy_available(), reason="needs the fast extra"
    )

    def test_auto_prefers_numpy(self):
        assert resolve_backend("auto") == "numpy"

    def test_available_backends_lists_both(self):
        assert available_backends() == ("reference", "numpy")


class TestWithoutNumpy:
    """Simulate a NumPy-free install by poisoning the import slot."""

    @pytest.fixture(autouse=True)
    def _no_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)

    def test_numpy_not_available(self):
        assert not numpy_available()

    def test_available_backends_is_reference_only(self):
        assert available_backends() == ("reference",)

    def test_auto_falls_back_silently(self):
        assert resolve_backend("auto") == "reference"

    def test_explicit_numpy_raises_with_install_hint(self):
        with pytest.raises(BackendUnavailable, match=r"\[fast\]"):
            resolve_backend("numpy")

    def test_env_requested_numpy_also_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        with pytest.raises(BackendUnavailable):
            resolve_backend(None)

    def test_backend_unavailable_is_a_simulation_error(self):
        assert issubclass(backends.BackendUnavailable, SimulationError)
