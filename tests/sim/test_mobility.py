"""Tests for the random-waypoint mobility substrate."""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.graphs import unit_disk
from repro.sim.faults import FaultSchedule
from repro.sim.mobility import (
    RandomWaypointModel,
    edges_for_positions,
    mobility_fault_schedule,
)


def make_model(n=12, seed=0, speed=0.05):
    rng = random.Random(seed)
    g = unit_disk(n, 0.4, rng)
    return g, RandomWaypointModel(dict(g.positions), random.Random(seed + 1), speed=speed)


class TestModel:
    def test_positions_stay_in_arena(self):
        _g, model = make_model()
        for _ in range(50):
            model.step(10)
            for x, y in model.positions.values():
                assert 0 <= x <= 1 and 0 <= y <= 1

    def test_nodes_actually_move(self):
        _g, model = make_model()
        before = model.positions
        model.step(20)
        after = model.positions
        moved = sum(1 for node in before if before[node] != after[node])
        assert moved == len(before)

    def test_step_distance_bounded_by_speed(self):
        _g, model = make_model(speed=0.02)
        before = model.positions
        model.step(1)
        after = model.positions
        for node in before:
            dist = math.hypot(
                after[node][0] - before[node][0], after[node][1] - before[node][1]
            )
            assert dist <= 0.02 * 1.5 + 1e-9

    def test_zero_step_is_noop(self):
        _g, model = make_model()
        before = model.positions
        model.step(0)
        assert model.positions == before

    def test_validation(self):
        with pytest.raises(SimulationError):
            RandomWaypointModel({}, random.Random(0))
        with pytest.raises(SimulationError):
            RandomWaypointModel({0: (0.5, 0.5)}, random.Random(0), speed=0)
        _g, model = make_model()
        with pytest.raises(SimulationError):
            model.step(-1)

    def test_deterministic_given_rng(self):
        _g, a = make_model(seed=5)
        _g2, b = make_model(seed=5)
        a.step(30)
        b.step(30)
        assert a.positions == b.positions


class TestEdgesForPositions:
    def test_matches_geometry(self):
        positions = {0: (0.0, 0.0), 1: (0.2, 0.0), 2: (0.9, 0.9)}
        edges = edges_for_positions(positions, 0.3)
        assert edges == {frozenset((0, 1))}

    def test_radius_validation(self):
        with pytest.raises(SimulationError):
            edges_for_positions({0: (0, 0)}, 0)


class TestFaultScheduleCompilation:
    def test_schedule_reflects_movement(self):
        _g, model = make_model(speed=0.08)
        schedule = mobility_fault_schedule(model, 0.4, horizon=160, resample_every=8)
        assert isinstance(schedule, FaultSchedule)
        assert schedule.edge_faults  # with this much movement churn is certain
        kinds = {f.kind for f in schedule.edge_faults}
        assert kinds <= {"add", "remove"}
        assert all(0 < f.slot <= 160 for f in schedule.edge_faults)

    def test_protected_edges_never_removed(self):
        g, model = make_model(speed=0.1)
        protected = {frozenset(e) for e in list(map(tuple, g.edges))[:5]}
        schedule = mobility_fault_schedule(
            model, 0.4, horizon=200, resample_every=10, protected=protected
        )
        for fault in schedule.edge_faults:
            if fault.kind == "remove":
                assert frozenset((fault.u, fault.v)) not in protected

    def test_zero_speed_like_static(self):
        _g, model = make_model(speed=1e-9)
        schedule = mobility_fault_schedule(model, 0.4, horizon=64)
        assert not schedule.edge_faults

    def test_validation(self):
        _g, model = make_model()
        with pytest.raises(SimulationError):
            mobility_fault_schedule(model, 0.4, horizon=-1)
        with pytest.raises(SimulationError):
            mobility_fault_schedule(model, 0.4, horizon=10, resample_every=0)


class TestEndToEndMobileBroadcast:
    def test_broadcast_over_mobile_network(self):
        # Protect a spanning tree (the paper's proviso) and let every
        # other link churn with movement: broadcast must still succeed.
        from repro.experiments.exp_dynamic import spanning_tree
        from repro.protocols.decay_broadcast import run_decay_broadcast

        rng = random.Random(3)
        g = unit_disk(40, 0.45, rng)
        tree = spanning_tree(g, 0)
        protected = {frozenset(e) for e in tree.edges}
        model = RandomWaypointModel(dict(g.positions), random.Random(4), speed=0.01)
        schedule = mobility_fault_schedule(
            model, 0.45, horizon=400, resample_every=8, protected=protected
        )
        result = run_decay_broadcast(g, source=0, seed=9, epsilon=0.05, faults=schedule)
        assert result.broadcast_succeeded(source=0)
