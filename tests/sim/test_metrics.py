"""Tests for RunMetrics."""

from repro.sim import RunMetrics


class TestCounters:
    def test_note_transmission(self):
        m = RunMetrics()
        m.note_transmission("a")
        m.note_transmission("a")
        m.note_transmission("b")
        assert m.transmissions == 3
        assert m.transmissions_per_node == {"a": 2, "b": 1}

    def test_note_delivery_records_first_only(self):
        m = RunMetrics()
        m.note_delivery("a", 4)
        m.note_delivery("a", 9)
        assert m.deliveries == 2
        assert m.first_reception["a"] == 4

    def test_note_collision(self):
        m = RunMetrics()
        m.note_collision()
        assert m.collisions == 1


class TestCompletion:
    def test_completion_slot(self):
        m = RunMetrics()
        m.note_delivery("b", 3)
        m.note_delivery("c", 7)
        assert m.completion_slot(["a", "b", "c"], skip=frozenset({"a"})) == 7

    def test_completion_none_when_missing(self):
        m = RunMetrics()
        m.note_delivery("b", 3)
        assert m.completion_slot(["a", "b", "c"], skip=frozenset({"a"})) is None

    def test_completion_all_skipped(self):
        m = RunMetrics()
        assert m.completion_slot(["a"], skip=frozenset({"a"})) == 0

    def test_coverage(self):
        m = RunMetrics()
        m.note_delivery("b", 0)
        assert m.coverage(["a", "b", "c"], skip=frozenset({"a"})) == 0.5

    def test_coverage_empty(self):
        m = RunMetrics()
        assert m.coverage(["a"], skip=frozenset({"a"})) == 1.0
