"""Tests for RunMetrics."""

from repro.sim import RunMetrics


class TestCounters:
    def test_note_transmission(self):
        m = RunMetrics()
        m.note_transmission("a")
        m.note_transmission("a")
        m.note_transmission("b")
        assert m.transmissions == 3
        assert m.transmissions_per_node == {"a": 2, "b": 1}

    def test_note_delivery_records_first_only(self):
        m = RunMetrics()
        m.note_delivery("a", 4)
        m.note_delivery("a", 9)
        assert m.deliveries == 2
        assert m.first_reception["a"] == 4

    def test_note_collision(self):
        m = RunMetrics()
        m.note_collision()
        assert m.collisions == 1


class TestCompletion:
    def test_completion_slot(self):
        m = RunMetrics()
        m.note_delivery("b", 3)
        m.note_delivery("c", 7)
        assert m.completion_slot(["a", "b", "c"], skip=frozenset({"a"})) == 7

    def test_completion_none_when_missing(self):
        m = RunMetrics()
        m.note_delivery("b", 3)
        assert m.completion_slot(["a", "b", "c"], skip=frozenset({"a"})) is None

    def test_completion_all_skipped(self):
        m = RunMetrics()
        assert m.completion_slot(["a"], skip=frozenset({"a"})) == 0

    def test_coverage(self):
        m = RunMetrics()
        m.note_delivery("b", 0)
        assert m.coverage(["a", "b", "c"], skip=frozenset({"a"})) == 0.5

    def test_coverage_empty(self):
        m = RunMetrics()
        assert m.coverage(["a"], skip=frozenset({"a"})) == 1.0


def _sample(tag: int) -> RunMetrics:
    m = RunMetrics(slots=10 * tag, jam_transmissions=tag)
    m.note_transmission(f"a{tag}")
    m.note_transmission("shared")
    m.note_delivery("shared", 5 + tag)
    m.note_delivery(f"a{tag}", tag)
    m.note_collision("shared")
    m.note_collision(f"a{tag}")
    return m


class TestCollisionsPerNode:
    def test_note_collision_with_node(self):
        m = RunMetrics()
        m.note_collision("a")
        m.note_collision("a")
        m.note_collision("b")
        assert m.collisions == 3
        assert m.collisions_per_node == {"a": 2, "b": 1}

    def test_note_collision_without_node_counts_total_only(self):
        m = RunMetrics()
        m.note_collision()
        assert m.collisions == 1
        assert m.collisions_per_node == {}


class TestMerge:
    def test_counters_sum(self):
        merged = _sample(1).merge(_sample(2))
        assert merged.slots == 30
        assert merged.transmissions == 4
        assert merged.collisions == 4
        assert merged.deliveries == 4
        assert merged.jam_transmissions == 3
        assert merged.transmissions_per_node == {"a1": 1, "a2": 1, "shared": 2}
        assert merged.collisions_per_node == {"a1": 1, "a2": 1, "shared": 2}

    def test_first_reception_min_merges(self):
        merged = _sample(1).merge(_sample(2))
        assert merged.first_reception["shared"] == 6  # min(6, 7)
        assert merged.first_reception["a1"] == 1
        assert merged.first_reception["a2"] == 2

    def test_does_not_mutate_operands(self):
        a, b = _sample(1), _sample(2)
        a.merge(b)
        assert a == _sample(1)
        assert b == _sample(2)

    def test_identity(self):
        m = _sample(3)
        assert m.merge(RunMetrics()) == m
        assert RunMetrics().merge(m) == m

    def test_commutative(self):
        assert _sample(1).merge(_sample(2)) == _sample(2).merge(_sample(1))

    def test_associative(self):
        a, b, c = _sample(1), _sample(2), _sample(3)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_all(self):
        total = RunMetrics.merge_all([_sample(1), _sample(2), _sample(3)])
        assert total == _sample(1).merge(_sample(2)).merge(_sample(3))

    def test_merge_all_empty_is_identity(self):
        assert RunMetrics.merge_all([]) == RunMetrics()

    def test_merge_all_empty_has_empty_maps(self):
        total = RunMetrics.merge_all([])
        assert total.first_reception == {}
        assert total.transmissions_per_node == {}
        assert total.collisions_per_node == {}

    def test_first_reception_one_sided_left(self):
        a = RunMetrics()
        a.note_delivery("v", 12)
        merged = a.merge(RunMetrics())
        assert merged.first_reception == {"v": 12}

    def test_first_reception_one_sided_right(self):
        b = RunMetrics()
        b.note_delivery("v", 12)
        merged = RunMetrics().merge(b)
        assert merged.first_reception == {"v": 12}

    def test_first_reception_disjoint_nodes_union(self):
        a, b = RunMetrics(), RunMetrics()
        a.note_delivery("u", 3)
        b.note_delivery("w", 8)
        merged = a.merge(b)
        assert merged.first_reception == {"u": 3, "w": 8}
        # symmetric: the side a node appears on must not matter
        assert b.merge(a).first_reception == {"u": 3, "w": 8}


def _random_metrics(rng) -> RunMetrics:
    """A randomized RunMetrics over a small shared node universe."""
    m = RunMetrics(
        slots=rng.randrange(0, 100),
        jam_transmissions=rng.randrange(0, 5),
    )
    nodes = [f"n{i}" for i in range(6)]
    for _ in range(rng.randrange(0, 10)):
        m.note_transmission(rng.choice(nodes))
    for _ in range(rng.randrange(0, 10)):
        m.note_delivery(rng.choice(nodes), rng.randrange(0, 50))
    for _ in range(rng.randrange(0, 10)):
        m.note_collision(rng.choice(nodes) if rng.random() < 0.7 else None)
    return m


class TestMergeProperties:
    """Property-style checks of the merge monoid on randomized triples."""

    def test_associativity_randomized_triples(self):
        import random

        rng = random.Random(1987)
        for _ in range(50):
            a, b, c = (_random_metrics(rng) for _ in range(3))
            assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_commutativity_randomized_pairs(self):
        import random

        rng = random.Random(42)
        for _ in range(50):
            a, b = _random_metrics(rng), _random_metrics(rng)
            assert a.merge(b) == b.merge(a)

    def test_identity_randomized(self):
        import random

        rng = random.Random(7)
        for _ in range(20):
            m = _random_metrics(rng)
            assert m.merge(RunMetrics()) == m
            assert RunMetrics().merge(m) == m

    def test_merge_all_matches_pairwise_fold(self):
        import random

        rng = random.Random(11)
        batch = [_random_metrics(rng) for _ in range(5)]
        folded = RunMetrics()
        for m in batch:
            folded = folded.merge(m)
        assert RunMetrics.merge_all(batch) == folded
