"""Tests for the NodeProgram abstraction and intents."""

import pytest

from repro.rng import spawn
from repro.sim import Context, Idle, NodeProgram, Receive, Transmit


class TestIntents:
    def test_transmit_carries_message(self):
        t = Transmit(("hello", 1))
        assert t.message == ("hello", 1)

    def test_intents_are_frozen(self):
        with pytest.raises(AttributeError):
            Transmit("m").message = "other"

    def test_equality(self):
        assert Transmit("m") == Transmit("m")
        assert Receive() == Receive()
        assert Idle() == Idle()
        assert Transmit("m") != Transmit("n")


class TestContext:
    def test_fields(self):
        ctx = Context(node=3, neighbor_ids=frozenset({1, 2}), rng=spawn(0, "c"))
        assert ctx.node == 3
        assert ctx.neighbor_ids == frozenset({1, 2})
        assert ctx.slot == 0
        assert ctx.extras == {}

    def test_extras_are_per_context(self):
        a = Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "a"))
        b = Context(node=1, neighbor_ids=frozenset(), rng=spawn(0, "b"))
        a.extras["x"] = 1
        assert "x" not in b.extras


class TestNodeProgramDefaults:
    def test_act_is_abstract(self):
        ctx = Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "d"))
        with pytest.raises(NotImplementedError):
            NodeProgram().act(ctx)

    def test_default_hooks_are_noops(self):
        prog = NodeProgram()
        ctx = Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "d"))
        prog.on_start(ctx)
        prog.on_observe(ctx, "anything")
        assert prog.is_done(ctx) is False
        assert prog.result() is None
