"""Tests for fault schedules."""

import random

import pytest

from repro.errors import SimulationError
from repro.graphs import Graph, line, random_gnp
from repro.sim import CrashFault, EdgeFault, FaultSchedule, JamFault, LinkLossFault
from repro.sim.faults import random_edge_kill_schedule
from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs.properties import is_connected


class TestEdgeFault:
    def test_remove(self):
        g = line(3)
        EdgeFault(slot=0, u=0, v=1).apply(g)
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_is_noop(self):
        g = line(2)
        EdgeFault(slot=0, u=0, v=5).apply(g)  # no error

    def test_add(self):
        g = Graph(nodes=[0, 1])
        EdgeFault(slot=0, u=0, v=1, kind="add").apply(g)
        assert g.has_edge(0, 1)


class TestCrashFaultValidation:
    def test_permanent_crash_needs_no_until(self):
        CrashFault(slot=3, node=1)  # no error

    def test_transient_crash_window(self):
        fault = CrashFault(slot=3, node=1, until=7)
        assert fault.until == 7

    def test_recovery_must_follow_crash(self):
        with pytest.raises(SimulationError, match="must follow"):
            CrashFault(slot=3, node=1, until=3)
        with pytest.raises(SimulationError, match="must follow"):
            CrashFault(slot=3, node=1, until=1)


class TestJamFaultValidation:
    def test_window_queries(self):
        fault = JamFault(node=2, start=3, end=6)
        assert not fault.active_at(2)
        assert fault.active_at(3)
        assert fault.active_at(5)
        assert not fault.active_at(6)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError, match="slot >= 0"):
            JamFault(node=2, start=-1, end=4)

    def test_empty_window_rejected(self):
        with pytest.raises(SimulationError, match="non-empty"):
            JamFault(node=2, start=4, end=4)


class TestLinkLossFaultValidation:
    def test_probability_range(self):
        LinkLossFault(p=0.0)
        LinkLossFault(p=1.0)
        with pytest.raises(SimulationError, match="\\[0, 1\\]"):
            LinkLossFault(p=1.5)
        with pytest.raises(SimulationError, match="\\[0, 1\\]"):
            LinkLossFault(p=-0.1)

    def test_empty_window_rejected(self):
        with pytest.raises(SimulationError, match="non-empty"):
            LinkLossFault(p=0.5, start=5, end=5)

    def test_open_ended_window(self):
        fault = LinkLossFault(p=0.5, start=3)
        assert not fault.active_at(2)
        assert fault.active_at(3)
        assert fault.active_at(10**9)

    def test_edges_normalised_to_unordered_pairs(self):
        fault = LinkLossFault(p=0.5, edges=frozenset({(0, 1), (2, 1)}))
        assert fault.covers(1, 0)
        assert fault.covers(0, 1)
        assert fault.covers(1, 2)
        assert not fault.covers(0, 2)

    def test_unrestricted_covers_everything(self):
        assert LinkLossFault(p=0.5).covers("a", "b")

    def test_degenerate_pair_rejected(self):
        with pytest.raises(SimulationError, match="pairs of distinct nodes"):
            LinkLossFault(p=0.5, edges=frozenset({(3, 3)}))


class TestFaultSchedule:
    def test_query_by_slot(self):
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=2, u=0, v=1), EdgeFault(slot=5, u=1, v=2)],
            crash_faults=[CrashFault(slot=2, node=3)],
        )
        assert len(schedule.edge_faults_at(2)) == 1
        assert schedule.edge_faults_at(3) == []
        assert len(schedule.crashes_at(2)) == 1
        assert schedule.crashes_at(0) == []

    def test_empty(self):
        schedule = FaultSchedule()
        assert schedule.is_empty()
        assert schedule.last_slot == -1

    def test_last_slot(self):
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=2, u=0, v=1)],
            crash_faults=[CrashFault(slot=9, node=3)],
        )
        assert schedule.last_slot == 9

    def test_window_faults_make_schedule_nonempty(self):
        assert not FaultSchedule(jam_faults=[JamFault(node=0, start=0, end=2)]).is_empty()
        assert not FaultSchedule(link_loss_faults=[LinkLossFault(p=0.5)]).is_empty()

    def test_last_slot_covers_windows(self):
        schedule = FaultSchedule(
            crash_faults=[CrashFault(slot=2, node=0, until=12)],
            jam_faults=[JamFault(node=1, start=0, end=8)],
        )
        assert schedule.last_slot == 11
        open_loss = FaultSchedule(link_loss_faults=[LinkLossFault(p=0.5, start=4)])
        assert open_loss.last_slot == 4
        bounded = FaultSchedule(link_loss_faults=[LinkLossFault(p=0.5, start=4, end=9)])
        assert bounded.last_slot == 8

    def test_counts(self):
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=0, u=0, v=1), EdgeFault(slot=1, u=1, v=2)],
            crash_faults=[CrashFault(slot=3, node=2)],
            link_loss_faults=[LinkLossFault(p=0.1)],
        )
        assert schedule.counts() == {"edge": 2, "crash": 1, "jam": 0, "link_loss": 1}

    def test_by_slot_preserves_same_slot_order(self):
        faults = [
            EdgeFault(slot=4, u=0, v=1),
            EdgeFault(slot=4, u=1, v=2),
            EdgeFault(slot=2, u=2, v=3),
        ]
        edge_index, _ = FaultSchedule(edge_faults=faults).by_slot()
        assert edge_index[4] == faults[:2]
        assert edge_index[2] == [faults[2]]


class TestValidateForGraph:
    def test_valid_schedule_passes(self):
        g = line(4)
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=0, u=0, v=1)],
            crash_faults=[CrashFault(slot=1, node=2)],
            jam_faults=[JamFault(node=3, start=0, end=2)],
            link_loss_faults=[LinkLossFault(p=0.5, edges=frozenset({(1, 2)}))],
        )
        schedule.validate_for_graph(g)  # no error

    @pytest.mark.parametrize(
        "schedule",
        [
            FaultSchedule(edge_faults=[EdgeFault(slot=0, u=0, v=9)]),
            FaultSchedule(crash_faults=[CrashFault(slot=0, node=9)]),
            FaultSchedule(jam_faults=[JamFault(node=9, start=0, end=1)]),
            FaultSchedule(
                link_loss_faults=[LinkLossFault(p=0.5, edges=frozenset({(0, 9)}))]
            ),
        ],
    )
    def test_unknown_node_rejected(self, schedule):
        with pytest.raises(SimulationError, match="not in the graph"):
            schedule.validate_for_graph(line(3))


class TestRandomEdgeKillSchedule:
    def test_protected_tree_never_killed(self):
        rng = random.Random(0)
        g = random_gnp(30, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 100, rng)
        protected = {frozenset(e) for e in tree.edges}
        for fault in schedule.edge_faults:
            assert frozenset((fault.u, fault.v)) not in protected

    def test_kill_fraction_zero_empty(self):
        rng = random.Random(0)
        g = random_gnp(20, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 0.0, 100, rng)
        assert schedule.is_empty()

    def test_kill_fraction_one_kills_all_nontree(self):
        rng = random.Random(1)
        g = random_gnp(20, 0.4, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 50, rng)
        assert len(schedule.edge_faults) == g.num_edges() - tree.num_edges()

    def test_surviving_graph_stays_connected(self):
        rng = random.Random(2)
        g = random_gnp(25, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 50, rng)
        survivor = g.copy()
        for fault in schedule.edge_faults:
            fault.apply(survivor)
        assert is_connected(survivor)

    def test_invalid_fraction(self):
        rng = random.Random(0)
        g = line(5)
        with pytest.raises(SimulationError):
            random_edge_kill_schedule(g, g, 1.5, 10, rng)

    def test_invalid_max_slot(self):
        rng = random.Random(0)
        g = line(5)
        with pytest.raises(SimulationError, match="max_slot"):
            random_edge_kill_schedule(g, g, 0.5, 0, rng)
        with pytest.raises(SimulationError, match="max_slot"):
            random_edge_kill_schedule(g, g, 0.5, -3, rng)

    def test_slots_within_horizon(self):
        rng = random.Random(3)
        g = random_gnp(20, 0.5, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 37, rng)
        assert all(0 <= f.slot < 37 for f in schedule.edge_faults)


def test_spanning_tree_is_spanning_tree():
    rng = random.Random(5)
    g = random_gnp(40, 0.2, rng)
    tree = spanning_tree(g, 0)
    assert tree.num_nodes() == g.num_nodes()
    assert tree.num_edges() == g.num_nodes() - 1
    assert is_connected(tree)
    for u, v in tree.edges:
        assert g.has_edge(u, v)
