"""Tests for fault schedules."""

import random

import pytest

from repro.errors import SimulationError
from repro.graphs import Graph, line, random_gnp
from repro.sim import CrashFault, EdgeFault, FaultSchedule
from repro.sim.faults import random_edge_kill_schedule
from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs.properties import is_connected


class TestEdgeFault:
    def test_remove(self):
        g = line(3)
        EdgeFault(slot=0, u=0, v=1).apply(g)
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_is_noop(self):
        g = line(2)
        EdgeFault(slot=0, u=0, v=5).apply(g)  # no error

    def test_add(self):
        g = Graph(nodes=[0, 1])
        EdgeFault(slot=0, u=0, v=1, kind="add").apply(g)
        assert g.has_edge(0, 1)


class TestFaultSchedule:
    def test_query_by_slot(self):
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=2, u=0, v=1), EdgeFault(slot=5, u=1, v=2)],
            crash_faults=[CrashFault(slot=2, node=3)],
        )
        assert len(schedule.edge_faults_at(2)) == 1
        assert schedule.edge_faults_at(3) == []
        assert len(schedule.crashes_at(2)) == 1
        assert schedule.crashes_at(0) == []

    def test_empty(self):
        schedule = FaultSchedule()
        assert schedule.is_empty()
        assert schedule.last_slot == -1

    def test_last_slot(self):
        schedule = FaultSchedule(
            edge_faults=[EdgeFault(slot=2, u=0, v=1)],
            crash_faults=[CrashFault(slot=9, node=3)],
        )
        assert schedule.last_slot == 9


class TestRandomEdgeKillSchedule:
    def test_protected_tree_never_killed(self):
        rng = random.Random(0)
        g = random_gnp(30, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 100, rng)
        protected = {frozenset(e) for e in tree.edges}
        for fault in schedule.edge_faults:
            assert frozenset((fault.u, fault.v)) not in protected

    def test_kill_fraction_zero_empty(self):
        rng = random.Random(0)
        g = random_gnp(20, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 0.0, 100, rng)
        assert schedule.is_empty()

    def test_kill_fraction_one_kills_all_nontree(self):
        rng = random.Random(1)
        g = random_gnp(20, 0.4, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 50, rng)
        assert len(schedule.edge_faults) == g.num_edges() - tree.num_edges()

    def test_surviving_graph_stays_connected(self):
        rng = random.Random(2)
        g = random_gnp(25, 0.3, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 50, rng)
        survivor = g.copy()
        for fault in schedule.edge_faults:
            fault.apply(survivor)
        assert is_connected(survivor)

    def test_invalid_fraction(self):
        rng = random.Random(0)
        g = line(5)
        with pytest.raises(SimulationError):
            random_edge_kill_schedule(g, g, 1.5, 10, rng)

    def test_slots_within_horizon(self):
        rng = random.Random(3)
        g = random_gnp(20, 0.5, rng)
        tree = spanning_tree(g, 0)
        schedule = random_edge_kill_schedule(g, tree, 1.0, 37, rng)
        assert all(0 <= f.slot < 37 for f in schedule.edge_faults)


def test_spanning_tree_is_spanning_tree():
    rng = random.Random(5)
    g = random_gnp(40, 0.2, rng)
    tree = spanning_tree(g, 0)
    assert tree.num_nodes() == g.num_nodes()
    assert tree.num_edges() == g.num_nodes() - 1
    assert is_connected(tree)
    for u, v in tree.edges:
        assert g.has_edge(u, v)
