"""Regression tests for the engine's hot-path caches.

The engine caches three things across slots: the audibility map (keyed
on the graph's version counter), the done-set (relying on monotone
``is_done``), and the indexed fault schedule.  Each cache has a way to
go stale; these tests pin the invalidation behaviour.
"""

from typing import Any

from repro.graphs import line, star
from repro.sim import (
    SILENCE,
    Context,
    EdgeFault,
    Engine,
    FaultSchedule,
    Idle,
    NodeProgram,
    Receive,
    Transmit,
)


class Beacon(NodeProgram):
    def act(self, ctx: Context) -> Any:
        return Transmit("b")


class Listener(NodeProgram):
    def __init__(self) -> None:
        self.heard: list[Any] = []

    def act(self, ctx: Context) -> Any:
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        self.heard.append(heard)


class DoneCounter(NodeProgram):
    """Never done; counts how often the engine polls ``is_done``."""

    def __init__(self) -> None:
        self.is_done_calls = 0

    def act(self, ctx: Context) -> Any:
        return Idle()

    def is_done(self, ctx: Context) -> bool:
        self.is_done_calls += 1
        return False


class DoneAfter(NodeProgram):
    """Done from a fixed slot on; counts polls after reporting done."""

    def __init__(self, at_slot: int) -> None:
        self.at_slot = at_slot
        self.polls_after_done = 0

    def act(self, ctx: Context) -> Any:
        return Idle()

    def is_done(self, ctx: Context) -> bool:
        done = ctx.slot >= self.at_slot
        if ctx.slot > self.at_slot:
            self.polls_after_done += 1
        return done


class TestAudibleCacheInvalidation:
    def test_edge_fault_changes_audible_transmitters(self):
        """The satellite regression guard: a mid-run edge removal must
        change what ``_audible_transmitters`` reports afterwards."""
        listeners = {1: Listener(), 2: Listener()}
        schedule = FaultSchedule(edge_faults=[EdgeFault(slot=2, u=0, v=1)])
        engine = Engine(
            line(3), {0: Beacon(), **listeners}, initiators={0}, faults=schedule
        )
        assert engine._audible_transmitters(1, {0: "m"}) == [0]
        for _ in range(4):
            engine.step()
        assert engine._audible_transmitters(1, {0: "m"}) == []
        # Node 1 heard the beacon only while the edge existed.
        assert listeners[1].heard == ["b", "b", SILENCE, SILENCE]

    def test_edge_fault_add_brings_transmitter_into_range(self):
        listener = Listener()
        schedule = FaultSchedule(edge_faults=[EdgeFault(slot=1, u=0, v=2, kind="add")])
        engine = Engine(
            line(3),
            {0: Beacon(), 1: Listener(), 2: listener},
            initiators={0},
            faults=schedule,
        )
        assert engine._audible_transmitters(2, {0: "m"}) == []
        engine.step()
        engine.step()
        assert engine._audible_transmitters(2, {0: "m"}) == [0]
        assert listener.heard == [SILENCE, "b"]

    def test_out_of_band_graph_mutation_is_picked_up(self):
        """Mutating ``engine.graph`` directly (no fault schedule) must
        invalidate the cached audibility map via the version counter."""
        engine = Engine(line(3), {0: Beacon(), 1: Listener(), 2: Listener()},
                        initiators={0})
        assert engine._audible_transmitters(1, {0: "m"}) == [0]
        engine.graph.remove_edge(0, 1)
        assert engine._audible_transmitters(1, {0: "m"}) == []
        engine.graph.add_edge(0, 2)
        assert engine._audible_transmitters(2, {0: "m"}) == [0]


class TestDoneSetCaching:
    def test_is_done_polled_once_per_node_per_slot(self):
        """The done-set must collapse the run-loop check and the intent
        collection into one ``is_done`` call per live node per slot."""
        programs = {node: DoneCounter() for node in range(4)}
        engine = Engine(star(3), programs, initiators={0})
        engine.run(5)
        assert [p.is_done_calls for p in programs.values()] == [5, 5, 5, 5]

    def test_done_nodes_never_polled_again(self):
        hub = DoneAfter(at_slot=2)
        leaves = {leaf: DoneCounter() for leaf in (1, 2, 3)}
        engine = Engine(star(3), {0: hub, **leaves}, initiators={0})
        engine.run(6)
        assert hub.polls_after_done == 0
        assert all(p.is_done_calls == 6 for p in leaves.values())

    def test_run_stops_at_first_all_done_slot(self):
        programs = {node: DoneAfter(at_slot=3) for node in range(3)}
        engine = Engine(line(3), programs, initiators={0})
        result = engine.run(100)
        assert result.slots == 3
