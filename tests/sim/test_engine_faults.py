"""Engine semantics of the fault families (crash, crash–recover, jam, loss).

These pin down the *behavioural* contract of :mod:`repro.sim.faults`
inside the engine — what a crashed node can and cannot do, what
receivers observe around a jammer, and how lossy links erase directed
receptions — which the chaos harness (:mod:`repro.chaos`) relies on.
"""

from typing import Any

import pytest

from repro.errors import SimulationError
from repro.graphs import Graph, line, star
from repro.sim import (
    COLLISION,
    SILENCE,
    CollisionDetectingMedium,
    Context,
    CrashFault,
    EdgeFault,
    Engine,
    FaultSchedule,
    Idle,
    JamFault,
    LinkLossFault,
    NodeProgram,
    Receive,
    Transmit,
)


class Beacon(NodeProgram):
    def __init__(self, message: Any = "b") -> None:
        self.message = message

    def act(self, ctx: Context) -> Any:
        return Transmit(self.message)


class Listener(NodeProgram):
    def __init__(self) -> None:
        self.heard: list[Any] = []

    def act(self, ctx: Context) -> Any:
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        self.heard.append(heard)


class ActLog(NodeProgram):
    """Idles forever, recording the slots at which it was asked to act."""

    def __init__(self) -> None:
        self.acted_at: list[int] = []

    def act(self, ctx: Context) -> Any:
        self.acted_at.append(ctx.slot)
        return Idle()


class DoneAfter(NodeProgram):
    def __init__(self, when: int) -> None:
        self.when = when

    def act(self, ctx: Context) -> Any:
        return Idle()

    def is_done(self, ctx: Context) -> bool:
        return ctx.slot >= self.when


class TestCrashSemantics:
    def test_crashed_node_stops_transmitting(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=2, node=0)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        engine.run(4)
        assert listener.heard == ["b", "b", SILENCE, SILENCE]

    def test_crashed_node_stops_receiving(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=2, node=1)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        engine.run(5)
        # Observations stop dead at the crash boundary.
        assert listener.heard == ["b", "b"]

    def test_crashed_node_program_never_acts(self):
        g = line(2)
        log = ActLog()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=3, node=1)])
        engine = Engine(g, {0: Beacon(), 1: log}, initiators={0}, faults=faults)
        engine.run(8)
        assert log.acted_at == [0, 1, 2]

    def test_crash_at_slot_zero(self):
        # The fault boundary precedes intent collection, so a slot-0
        # crash means the node never acts at all.
        g = line(2)
        log = ActLog()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=1)])
        engine = Engine(g, {0: Beacon(), 1: log}, initiators={0}, faults=faults)
        result = engine.run(3)
        assert log.acted_at == []
        assert result.metrics.deliveries == 0

    def test_crash_of_source_kills_broadcast(self):
        g = line(3)
        l1, l2 = Listener(), Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=0)])
        engine = Engine(
            g, {0: Beacon("m"), 1: l1, 2: l2}, initiators={0}, faults=faults
        )
        result = engine.run(5)
        assert not result.broadcast_succeeded(source=0)
        assert all(h is SILENCE for h in l1.heard)

    def test_schedule_is_snapshotted_at_construction(self):
        # by_slot() is a snapshot: appending to the schedule after the
        # engine is built must not change the run.
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(edge_faults=[EdgeFault(slot=50, u=0, v=1)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        faults.crash_faults.append(CrashFault(slot=0, node=0))
        faults.jam_faults.append(JamFault(node=1, start=0, end=10))
        faults.link_loss_faults.append(LinkLossFault(p=1.0))
        engine.run(3)
        assert listener.heard == ["b", "b", "b"]


class TestCrashRecover:
    def test_transmitter_outage_window(self):
        # Source down for slots [1, 3): the gap is exactly the window.
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=1, node=0, until=3)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        engine.run(5)
        assert listener.heard == ["b", SILENCE, SILENCE, "b", "b"]

    def test_receiver_outage_window(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=1, node=1, until=3)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        engine.run(5)
        # Down for two slots: observations resume with state intact.
        assert listener.heard == ["b", "b", "b"]

    def test_recovered_program_keeps_state(self):
        g = line(2)
        log = ActLog()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=2, node=1, until=4)])
        engine = Engine(g, {0: Beacon(), 1: log}, initiators={0}, faults=faults)
        engine.run(6)
        assert log.acted_at == [0, 1, 4, 5]

    def test_engine_waits_for_pending_recovery(self):
        # All live programs are done, but a crashed node will recover
        # and act again — the run must not terminate under it.
        g = line(2)
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=1, until=5)])
        engine = Engine(
            g, {0: DoneAfter(0), 1: DoneAfter(6)}, initiators={0}, faults=faults
        )
        result = engine.run(20)
        assert result.slots == 6

    def test_permanent_crash_still_terminates(self):
        g = line(2)
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=1)])
        engine = Engine(
            g, {0: DoneAfter(0), 1: DoneAfter(6)}, initiators={0}, faults=faults
        )
        result = engine.run(20)
        assert result.slots == 1


class TestJamSemantics:
    def test_jammer_collides_with_legitimate_transmitter(self):
        # Hub 0 hears leaf 1 (legit) and leaf 2 (jamming): collision.
        g = star(2)
        listener = Listener()
        faults = FaultSchedule(jam_faults=[JamFault(node=2, start=0, end=2)])
        engine = Engine(
            g, {0: listener, 1: Beacon("a"), 2: Listener()},
            initiators={1},
            faults=faults,
        )
        result = engine.run(3)
        assert listener.heard == [SILENCE, SILENCE, "a"]
        assert result.metrics.collisions == 2

    def test_lone_jammer_reads_as_silence(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(jam_faults=[JamFault(node=0, start=0, end=2)])
        engine = Engine(
            g, {0: Listener(), 1: listener}, initiators=set(), faults=faults
        )
        result = engine.run(2)
        assert listener.heard == [SILENCE, SILENCE]
        assert result.metrics.deliveries == 0

    def test_lone_jammer_is_collision_under_detection(self):
        # Energy without content: a CD medium reports COLLISION.
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(jam_faults=[JamFault(node=0, start=0, end=2)])
        engine = Engine(
            g,
            {0: Listener(), 1: listener},
            medium=CollisionDetectingMedium(),
            initiators=set(),
            faults=faults,
        )
        engine.run(2)
        assert listener.heard == [COLLISION, COLLISION]

    def test_jam_transmissions_metered_separately(self):
        g = line(3)
        faults = FaultSchedule(jam_faults=[JamFault(node=2, start=0, end=4)])
        engine = Engine(
            g, {0: Beacon(), 1: Listener(), 2: Listener()},
            initiators={0},
            faults=faults,
        )
        result = engine.run(4)
        assert result.metrics.jam_transmissions == 4
        assert result.metrics.transmissions == 4
        assert 2 not in result.metrics.transmissions_per_node

    def test_jamming_does_not_trip_spontaneous_rule(self):
        # The jammer never received anything; injected noise is the
        # adversary's doing, not the program's, so rule 5 stays quiet.
        g = line(2)
        faults = FaultSchedule(jam_faults=[JamFault(node=1, start=0, end=3)])
        engine = Engine(
            g, {0: Listener(), 1: Listener()}, initiators=set(), faults=faults
        )
        engine.run(3)  # no ProtocolError

    def test_jammed_program_is_suspended(self):
        g = line(2)
        log = ActLog()
        faults = FaultSchedule(jam_faults=[JamFault(node=1, start=1, end=3)])
        engine = Engine(g, {0: Beacon(), 1: log}, initiators={0}, faults=faults)
        engine.run(5)
        assert log.acted_at == [0, 3, 4]

    def test_crashed_jammer_emits_nothing(self):
        # Crash wins over jam: a dead adversary radiates no noise.
        g = star(2)
        listener = Listener()
        faults = FaultSchedule(
            crash_faults=[CrashFault(slot=0, node=2)],
            jam_faults=[JamFault(node=2, start=0, end=3)],
        )
        engine = Engine(
            g, {0: listener, 1: Beacon("a"), 2: Listener()},
            initiators={1},
            faults=faults,
        )
        result = engine.run(3)
        assert listener.heard == ["a", "a", "a"]
        assert result.metrics.jam_transmissions == 0


class TestLinkLoss:
    def test_total_loss_erases_everything(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(link_loss_faults=[LinkLossFault(p=1.0)])
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        result = engine.run(6)
        assert listener.heard == [SILENCE] * 6
        assert result.metrics.deliveries == 0

    def test_zero_loss_is_identity(self):
        def run(faults):
            g = line(2)
            listener = Listener()
            engine = Engine(
                g, {0: Beacon(), 1: listener}, seed=7, initiators={0}, faults=faults
            )
            engine.run(6)
            return listener.heard

        lossless = FaultSchedule(link_loss_faults=[LinkLossFault(p=0.0)])
        assert run(lossless) == run(None) == ["b"] * 6

    def test_loss_pattern_replays_with_seed(self):
        def run(seed):
            g = line(2)
            listener = Listener()
            faults = FaultSchedule(link_loss_faults=[LinkLossFault(p=0.5)])
            engine = Engine(
                g, {0: Beacon(), 1: listener}, seed=seed, initiators={0}, faults=faults
            )
            engine.run(40)
            return listener.heard

        first = run(1234)
        assert first == run(1234)
        # p = 0.5 over 40 slots: both outcomes occur, and a different
        # seed draws a different pattern (2^-40 failure odds).
        assert SILENCE in first and "b" in first
        assert first != run(4321)

    def test_loss_window_limits(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(
            link_loss_faults=[LinkLossFault(p=1.0, start=2, end=4)]
        )
        engine = Engine(g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults)
        engine.run(6)
        assert listener.heard == ["b", "b", SILENCE, SILENCE, "b", "b"]

    def test_loss_restricted_to_edges(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        l1, l2 = Listener(), Listener()
        faults = FaultSchedule(
            link_loss_faults=[LinkLossFault(p=1.0, edges=frozenset({frozenset({0, 1})}))]
        )
        engine = Engine(
            g, {0: Beacon(), 1: l1, 2: l2}, initiators={0}, faults=faults
        )
        engine.run(3)
        assert l1.heard == [SILENCE] * 3
        assert l2.heard == ["b"] * 3

    def test_erased_signal_does_not_collide(self):
        # Receiver 0 neighbours two transmitters; erasing one of them
        # turns the would-be collision into a clean delivery.
        g = Graph(edges=[(1, 0), (2, 0)])
        listener = Listener()
        faults = FaultSchedule(
            link_loss_faults=[LinkLossFault(p=1.0, edges=frozenset({frozenset({1, 0})}))]
        )
        engine = Engine(
            g, {0: listener, 1: Beacon("a"), 2: Beacon("c")},
            initiators={1, 2},
            faults=faults,
        )
        result = engine.run(2)
        assert listener.heard == ["c", "c"]
        assert result.metrics.collisions == 0


class TestConstructionValidation:
    """Unknown fault targets fail at Engine construction (not mid-run)."""

    def _build(self, faults):
        g = line(2)
        return Engine(g, {0: Beacon(), 1: Listener()}, initiators={0}, faults=faults)

    def test_edge_fault_unknown_node(self):
        with pytest.raises(SimulationError, match="not in the graph"):
            self._build(FaultSchedule(edge_faults=[EdgeFault(slot=0, u=0, v=9)]))

    def test_crash_fault_unknown_node(self):
        with pytest.raises(SimulationError, match="not in the graph"):
            self._build(FaultSchedule(crash_faults=[CrashFault(slot=0, node=9)]))

    def test_jam_fault_unknown_node(self):
        with pytest.raises(SimulationError, match="not in the graph"):
            self._build(FaultSchedule(jam_faults=[JamFault(node=9, start=0, end=1)]))

    def test_loss_fault_unknown_edge_node(self):
        with pytest.raises(SimulationError, match="not in the graph"):
            self._build(
                FaultSchedule(
                    link_loss_faults=[
                        LinkLossFault(p=0.5, edges=frozenset({frozenset({0, 9})}))
                    ]
                )
            )

    def test_unrestricted_loss_needs_no_nodes(self):
        self._build(FaultSchedule(link_loss_faults=[LinkLossFault(p=0.5)]))
