"""Bit-for-bit parity of the vectorized backend with the reference engine.

The backend contract (see :mod:`repro.sim.vectorized`): for the same
(graph, seed, protocol parameters, fault schedule), the NumPy batch
backend must produce *identical* :class:`~repro.sim.metrics.RunMetrics`,
node results and completion slots to the reference engine — not
statistically similar, identical.  These tests sweep randomized
topologies × seeds × fault families (crash, transient crash, jam, edge
cut, link loss, combined), so any divergence in draw ordering, fault
timing or slot-resolution rules fails loudly on a concrete seed.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import complete, grid, random_gnp, star
from repro.protocols.aloha import make_aloha_programs
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import seed_sequence, spawn
from repro.sim import (
    CrashFault,
    EdgeFault,
    Engine,
    FaultSchedule,
    JamFault,
    LinkLossFault,
)
from repro.sim.metrics import RunMetrics
from repro.sim.vectorized import run_aloha_batch, run_decay_broadcast_batch

TOPOLOGIES = {
    "gnp-16": lambda: random_gnp(16, 0.25, spawn(7, "parity")),
    "grid-4x4": lambda: grid(4, 4),
    "complete-8": lambda: complete(8),
    "star-9": lambda: star(9),
}

# Every schedule references only nodes 0..7, present in all topologies.
SCHEDULES = {
    "none": None,
    "crash": FaultSchedule(
        crash_faults=[
            CrashFault(slot=3, node=1),
            CrashFault(slot=2, node=2, until=6),
        ]
    ),
    "jam": FaultSchedule(jam_faults=[JamFault(node=1, start=2, end=7)]),
    "edge": FaultSchedule(edge_faults=[EdgeFault(slot=4, u=0, v=1)]),
    "loss": FaultSchedule(link_loss_faults=[LinkLossFault(p=0.3, start=1, end=30)]),
    "combined": FaultSchedule(
        crash_faults=[CrashFault(slot=5, node=2, until=9)],
        jam_faults=[JamFault(node=3, start=3, end=8)],
        link_loss_faults=[LinkLossFault(p=0.2, start=0)],
    ),
}


def _seeds(*tags, count=3):
    return list(seed_sequence(20260807, count, "vec-parity", *tags))


def assert_metrics_equal(ref: RunMetrics, vec: RunMetrics) -> None:
    assert vec.slots == ref.slots
    assert vec.transmissions == ref.transmissions
    assert vec.collisions == ref.collisions
    assert vec.deliveries == ref.deliveries
    assert vec.jam_transmissions == ref.jam_transmissions
    assert vec.first_reception == ref.first_reception
    assert vec.transmissions_per_node == ref.transmissions_per_node
    assert vec.collisions_per_node == ref.collisions_per_node


def _reference_aloha(graph, seed, *, slots, p, active_slots=None, faults=None):
    programs = make_aloha_programs(graph, 0, p=p, active_slots=active_slots)
    engine = Engine(graph, programs, seed=seed, initiators={0}, faults=faults)
    return engine.run(slots)


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_aloha_parity(topology, schedule):
    graph = TOPOLOGIES[topology]()
    faults = SCHEDULES[schedule]
    seeds = _seeds("aloha", topology, schedule)
    batch = run_aloha_batch(graph, 0, seeds, p=0.3, slots=60, faults=faults)
    for seed, vec in zip(seeds, batch):
        ref = _reference_aloha(graph, seed, slots=60, p=0.3, faults=faults)
        assert_metrics_equal(ref.metrics, vec.metrics)
        assert vec.slots == ref.slots
        assert vec.node_results() == ref.node_results()
        assert vec.broadcast_completion_slot(
            source=0
        ) == ref.broadcast_completion_slot(source=0)


@pytest.mark.parametrize("schedule", ["none", "crash", "jam"])
def test_aloha_parity_with_active_slots_bound(schedule):
    graph = TOPOLOGIES["gnp-16"]()
    faults = SCHEDULES[schedule]
    seeds = _seeds("aloha-bound", schedule)
    batch = run_aloha_batch(
        graph, 0, seeds, p=0.3, slots=80, active_slots=20, faults=faults
    )
    for seed, vec in zip(seeds, batch):
        ref = _reference_aloha(
            graph, seed, slots=80, p=0.3, active_slots=20, faults=faults
        )
        assert_metrics_equal(ref.metrics, vec.metrics)
        assert vec.node_results() == ref.node_results()


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_decay_parity(topology, schedule):
    graph = TOPOLOGIES[topology]()
    faults = SCHEDULES[schedule]
    seeds = _seeds("decay", topology, schedule)
    batch = run_decay_broadcast_batch(graph, 0, seeds, faults=faults)
    for seed, vec in zip(seeds, batch):
        ref = run_decay_broadcast(graph, 0, seed=seed, faults=faults)
        assert_metrics_equal(ref.metrics, vec.metrics)
        assert vec.slots == ref.slots
        assert vec.node_results() == ref.node_results()
        assert vec.broadcast_completion_slot(
            source=0
        ) == ref.broadcast_completion_slot(source=0)
        assert vec.broadcast_succeeded(source=0) == ref.broadcast_succeeded(source=0)


@pytest.mark.parametrize("stop", ["informed", "terminated"])
@pytest.mark.parametrize("align_phases", [True, False])
def test_decay_parity_stop_and_alignment_modes(stop, align_phases):
    graph = TOPOLOGIES["gnp-16"]()
    seeds = _seeds("decay-modes", stop, align_phases)
    batch = run_decay_broadcast_batch(
        graph, 0, seeds, stop=stop, align_phases=align_phases
    )
    for seed, vec in zip(seeds, batch):
        ref = run_decay_broadcast(
            graph, 0, seed=seed, stop=stop, align_phases=align_phases
        )
        assert_metrics_equal(ref.metrics, vec.metrics)
        assert vec.node_results() == ref.node_results()


def test_decay_parity_with_degree_and_size_bounds():
    graph = TOPOLOGIES["grid-4x4"]()
    seeds = _seeds("decay-bounds")
    kwargs = dict(epsilon=0.2, upper_bound_n=32, max_degree_bound=8)
    batch = run_decay_broadcast_batch(graph, 0, seeds, **kwargs)
    for seed, vec in zip(seeds, batch):
        ref = run_decay_broadcast(graph, 0, seed=seed, **kwargs)
        assert_metrics_equal(ref.metrics, vec.metrics)
        assert vec.node_results() == ref.node_results()


def test_batch_size_never_changes_results():
    """Chunking is an execution detail: every batch_size gives one answer."""
    graph = TOPOLOGIES["gnp-16"]()
    seeds = _seeds("chunking", count=7)
    full = run_decay_broadcast_batch(graph, 0, seeds)
    for batch_size in (1, 2, 3, len(seeds)):
        chunked = run_decay_broadcast_batch(graph, 0, seeds, batch_size=batch_size)
        for a, b in zip(full, chunked):
            assert_metrics_equal(a.metrics, b.metrics)
            assert a.node_results() == b.node_results()


def test_merged_campaign_metrics_match_reference():
    """RunMetrics.merge_all over a campaign is backend-independent."""
    graph = TOPOLOGIES["complete-8"]()
    faults = SCHEDULES["combined"]
    seeds = _seeds("merge", count=5)
    vec = run_decay_broadcast_batch(graph, 0, seeds, faults=faults)
    ref = [run_decay_broadcast(graph, 0, seed=seed, faults=faults) for seed in seeds]
    merged_vec = RunMetrics.merge_all(r.metrics for r in vec)
    merged_ref = RunMetrics.merge_all(r.metrics for r in ref)
    assert_metrics_equal(merged_ref, merged_vec)


def test_vectorized_results_carry_no_trace_or_provenance():
    """The batch backend's documented non-goals stay None, not fakes."""
    graph = star(6)
    (result,) = run_aloha_batch(graph, 0, [11], p=0.5, slots=10)
    assert result.trace is None
    assert result.provenance is None
