"""Tests for the synchronous slot engine against Definition 1's rules."""

from typing import Any

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.graphs import DiGraph, Graph, line, star
from repro.sim import (
    SILENCE,
    Context,
    CrashFault,
    EdgeFault,
    Engine,
    FaultSchedule,
    Idle,
    NodeProgram,
    Receive,
    Transmit,
)


class Beacon(NodeProgram):
    """Transmits a fixed message every slot."""

    def __init__(self, message: Any = "b") -> None:
        self.message = message

    def act(self, ctx: Context) -> Any:
        return Transmit(self.message)


class Listener(NodeProgram):
    """Receives every slot and logs observations."""

    def __init__(self) -> None:
        self.heard: list[Any] = []

    def act(self, ctx: Context) -> Any:
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        self.heard.append(heard)


class Sleeper(NodeProgram):
    def act(self, ctx: Context) -> Any:
        return Idle()


class OneShot(NodeProgram):
    """Transmits exactly at a chosen slot, else idle."""

    def __init__(self, at_slot: int, message: Any = "m") -> None:
        self.at_slot = at_slot
        self.message = message

    def act(self, ctx: Context) -> Any:
        return Transmit(self.message) if ctx.slot == self.at_slot else Idle()


class TestEngineBasics:
    def test_programs_must_cover_nodes(self):
        g = line(3)
        with pytest.raises(SimulationError):
            Engine(g, {0: Beacon(), 1: Beacon()}, initiators={0})

    def test_engine_copies_graph(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        engine.graph.add_edge(1, 5)  # mutate the engine's copy... invalid node set
        assert not g.has_node(5)

    def test_run_zero_slots(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        result = engine.run(0)
        assert result.slots == 0

    def test_negative_max_slots(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        with pytest.raises(SimulationError):
            engine.run(-1)

    def test_slot_counter_advances(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        result = engine.run(5)
        assert result.slots == 5
        assert result.metrics.slots == 5


class TestReceptionRule:
    """Rule 3: receive iff exactly one neighbour transmits."""

    def test_single_transmitter_delivered(self):
        g = line(2)
        listener = Listener()
        engine = Engine(g, {0: Beacon("hi"), 1: listener}, initiators={0})
        engine.run(1)
        assert listener.heard == ["hi"]

    def test_two_transmitters_collide(self):
        g = star(2)  # hub 0, leaves 1 and 2
        listener = Listener()
        engine = Engine(
            g,
            {0: listener, 1: Beacon("a"), 2: Beacon("b")},
            initiators={1, 2},
        )
        engine.run(1)
        assert listener.heard == [SILENCE]

    def test_non_neighbor_transmission_not_heard(self):
        g = line(3)  # 0-1-2; node 2 can't hear node 0
        listener = Listener()
        engine = Engine(
            g, {0: Beacon("far"), 1: Sleeper(), 2: listener}, initiators={0}
        )
        engine.run(1)
        assert listener.heard == [SILENCE]

    def test_transmitter_does_not_hear_anything(self):
        # A node acting as transmitter gets no observation that slot.
        g = line(2)
        b = Beacon("x")
        observations = []
        b.on_observe = lambda ctx, heard: observations.append(heard)  # type: ignore[method-assign]
        engine = Engine(g, {0: b, 1: Beacon("y")}, initiators={0, 1})
        engine.run(3)
        assert observations == []

    def test_collision_on_one_receiver_not_another(self):
        # 1 and 2 both transmit; 0 neighbours both (collision) while 3
        # neighbours only 2 (clean reception).
        g = Graph(edges=[(0, 1), (0, 2), (3, 2)])
        l0, l3 = Listener(), Listener()
        engine = Engine(
            g,
            {0: l0, 1: Beacon("a"), 2: Beacon("b"), 3: l3},
            initiators={1, 2},
        )
        engine.run(1)
        assert l0.heard == [SILENCE]
        assert l3.heard == ["b"]

    def test_directed_reception(self):
        g = DiGraph(edges=[(0, 1)])  # 0 can talk to 1, not vice versa
        l0, l1 = Listener(), Listener()
        engine = Engine(g, {0: Beacon("fwd"), 1: l1}, initiators={0})
        engine.run(1)
        assert l1.heard == ["fwd"]
        g2 = DiGraph(edges=[(0, 1)])
        engine2 = Engine(g2, {0: l0, 1: Beacon("back")}, initiators={1})
        engine2.run(1)
        assert l0.heard == [SILENCE]


class TestRuleFive:
    """Rule 5: no spontaneous transmissions."""

    def test_spontaneous_transmission_rejected(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()})  # no initiators
        with pytest.raises(ProtocolError, match="spontaneous"):
            engine.run(1)

    def test_initiator_may_transmit(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        engine.run(1)  # no error

    def test_informed_node_may_transmit(self):
        # Node 1 receives at slot 0 and transmits from slot 1 on.
        class RelayAfterReceive(NodeProgram):
            def __init__(self) -> None:
                self.got = None

            def act(self, ctx):
                return Transmit(self.got) if self.got is not None else Receive()

            def on_observe(self, ctx, heard):
                if heard is not SILENCE:
                    self.got = heard

        g = line(3)
        relay = RelayAfterReceive()
        tail = Listener()
        engine = Engine(g, {0: OneShot(0, "m"), 1: relay, 2: tail}, initiators={0})
        engine.run(3)
        assert tail.heard[0] is SILENCE
        assert tail.heard[1] == "m"

    def test_enforcement_can_be_disabled(self):
        g = line(2)
        engine = Engine(
            g, {0: Beacon(), 1: Listener()}, enforce_no_spontaneous=False
        )
        engine.run(1)  # no error

    def test_bad_intent_type_rejected(self):
        class Broken(NodeProgram):
            def act(self, ctx):
                return "transmit"

        g = line(2)
        engine = Engine(g, {0: Broken(), 1: Listener()}, initiators={0})
        with pytest.raises(ProtocolError, match="expected Transmit"):
            engine.run(1)


class TestTermination:
    def test_all_done_stops_early(self):
        class DoneAfter(NodeProgram):
            def __init__(self, when: int) -> None:
                self.when = when

            def act(self, ctx):
                return Idle()

            def is_done(self, ctx):
                return ctx.slot >= self.when

        g = line(2)
        engine = Engine(g, {0: DoneAfter(3), 1: DoneAfter(2)}, initiators={0})
        result = engine.run(100)
        assert result.slots == 3

    def test_stop_when_predicate(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        result = engine.run(100, stop_when=lambda e: e.slot >= 7)
        assert result.slots == 7


class TestMetricsCollection:
    def test_transmissions_counted(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        result = engine.run(4)
        assert result.metrics.transmissions == 4
        assert result.metrics.transmissions_per_node[0] == 4

    def test_first_reception_recorded_once(self):
        g = line(2)
        engine = Engine(g, {0: Beacon(), 1: Listener()}, initiators={0})
        result = engine.run(5)
        assert result.metrics.first_reception[1] == 0
        assert result.metrics.deliveries == 5

    def test_collisions_counted(self):
        g = star(2)
        engine = Engine(
            g, {0: Listener(), 1: Beacon(), 2: Beacon()}, initiators={1, 2}
        )
        result = engine.run(3)
        assert result.metrics.collisions == 3

    def test_run_result_broadcast_helpers(self):
        g = line(3)

        class Relay(NodeProgram):
            def __init__(self):
                self.got = None

            def act(self, ctx):
                return Transmit(self.got) if self.got else Receive()

            def on_observe(self, ctx, heard):
                if heard is not SILENCE:
                    self.got = heard

        engine = Engine(
            g, {0: Beacon("m"), 1: Relay(), 2: Relay()}, initiators={0}
        )
        result = engine.run(10)
        assert result.broadcast_succeeded(source=0)
        assert result.broadcast_completion_slot(source=0) == 1


class TestFaultsInEngine:
    def test_edge_removal_cuts_delivery(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(edge_faults=[EdgeFault(slot=2, u=0, v=1)])
        engine = Engine(
            g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults
        )
        engine.run(4)
        assert listener.heard == ["b", "b", SILENCE, SILENCE]

    def test_edge_addition_enables_delivery(self):
        g = Graph(nodes=[0, 1])
        listener = Listener()
        faults = FaultSchedule(
            edge_faults=[EdgeFault(slot=2, u=0, v=1, kind="add")]
        )
        engine = Engine(
            g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults
        )
        engine.run(4)
        assert listener.heard == [SILENCE, SILENCE, "b", "b"]

    def test_crash_silences_node(self):
        g = line(2)
        listener = Listener()
        faults = FaultSchedule(crash_faults=[CrashFault(slot=1, node=0)])
        engine = Engine(
            g, {0: Beacon(), 1: listener}, initiators={0}, faults=faults
        )
        engine.run(3)
        assert listener.heard == ["b", SILENCE, SILENCE]

    def test_crashed_node_ignored_for_done_check(self):
        class NeverDone(NodeProgram):
            def act(self, ctx):
                return Idle()

        g = line(2)
        faults = FaultSchedule(crash_faults=[CrashFault(slot=0, node=1)])

        class DoneNow(NodeProgram):
            def act(self, ctx):
                return Idle()

            def is_done(self, ctx):
                return True

        engine = Engine(
            g, {0: DoneNow(), 1: NeverDone()}, initiators={0}, faults=faults
        )
        result = engine.run(10)
        # The crash is applied at the slot-0 boundary (inside the first
        # step); from slot 1 on the only live program is done.
        assert result.slots == 1


class TestContext:
    def test_neighbor_ids_are_initial_input(self):
        captured = {}

        class Introspect(NodeProgram):
            def act(self, ctx):
                captured[ctx.node] = ctx.neighbor_ids
                return Idle()

        g = line(3)
        engine = Engine(
            g, {i: Introspect() for i in range(3)}, initiators={0}
        )
        engine.run(1)
        assert captured[0] == frozenset({1})
        assert captured[1] == frozenset({0, 2})

    def test_per_node_rngs_differ(self):
        draws = {}

        class Draw(NodeProgram):
            def act(self, ctx):
                draws.setdefault(ctx.node, ctx.rng.random())
                return Idle()

        g = line(3)
        engine = Engine(g, {i: Draw() for i in range(3)}, initiators={0})
        engine.run(1)
        assert len(set(draws.values())) == 3

    def test_same_seed_same_run(self):
        def run_once():
            g = star(3)
            listener = Listener()

            class MaybeBeacon(NodeProgram):
                def act(self, ctx):
                    if ctx.rng.random() < 0.5:
                        return Transmit(ctx.slot)
                    return Idle()

            engine = Engine(
                g,
                {0: listener, 1: MaybeBeacon(), 2: MaybeBeacon(), 3: MaybeBeacon()},
                seed=1234,
                initiators={1, 2, 3},
            )
            engine.run(20)
            return list(listener.heard)

        assert run_once() == run_once()
