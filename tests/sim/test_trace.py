"""Tests for trace recording."""

from typing import Any

from repro.graphs import line, star
from repro.sim import (
    SILENCE,
    Context,
    Engine,
    Idle,
    NodeProgram,
    Receive,
    SlotRecord,
    Trace,
    Transmit,
)


class Beacon(NodeProgram):
    def __init__(self, message: Any = "b") -> None:
        self.message = message

    def act(self, ctx: Context) -> Any:
        return Transmit(self.message)


class Listener(NodeProgram):
    def act(self, ctx: Context) -> Any:
        return Receive()


def traced_run(graph, programs, initiators, slots):
    engine = Engine(
        graph, programs, initiators=initiators, record_trace=True
    )
    result = engine.run(slots)
    assert result.trace is not None
    return result


class TestTraceRecording:
    def test_no_trace_by_default(self):
        engine = Engine(line(2), {0: Beacon(), 1: Listener()}, initiators={0})
        assert engine.run(2).trace is None

    def test_record_one_slot(self):
        result = traced_run(line(2), {0: Beacon("m"), 1: Listener()}, {0}, 1)
        rec = result.trace[0]
        assert rec.slot == 0
        assert rec.transmitters == {0: "m"}
        assert rec.receivers == frozenset({1})
        assert rec.heard == {1: "m"}
        assert rec.deliveries == {1: (0, "m")}
        assert rec.conflict_counts == {1: 1}

    def test_collision_recorded(self):
        result = traced_run(
            star(2), {0: Listener(), 1: Beacon("a"), 2: Beacon("b")}, {1, 2}, 1
        )
        rec = result.trace[0]
        assert rec.heard[0] is SILENCE
        assert rec.deliveries == {}
        assert rec.conflict_counts[0] == 2
        assert rec.collided_receivers == frozenset({0})

    def test_trace_length_matches_slots(self):
        result = traced_run(line(2), {0: Beacon(), 1: Listener()}, {0}, 7)
        assert len(result.trace) == 7
        assert [rec.slot for rec in result.trace] == list(range(7))


class TestTraceQueries:
    def setup_method(self):
        self.result = traced_run(
            line(2), {0: Beacon("m"), 1: Listener()}, {0}, 5
        )
        self.trace = self.result.trace

    def test_total_transmissions(self):
        assert self.trace.total_transmissions() == 5

    def test_transmissions_by(self):
        assert self.trace.transmissions_by(0) == 5
        assert self.trace.transmissions_by(1) == 0

    def test_first_delivery_slot(self):
        assert self.trace.first_delivery_slot(1) == 0
        assert self.trace.first_delivery_slot(0) is None

    def test_deliveries_to(self):
        deliveries = self.trace.deliveries_to(1)
        assert len(deliveries) == 5
        assert deliveries[0] == (0, 0, "m")

    def test_total_collisions_zero_here(self):
        assert self.trace.total_collisions() == 0

    def test_iteration(self):
        assert all(isinstance(rec, SlotRecord) for rec in self.trace)


def test_empty_trace():
    trace = Trace()
    assert len(trace) == 0
    assert trace.total_transmissions() == 0
    assert trace.first_delivery_slot(0) is None
