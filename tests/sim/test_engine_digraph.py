"""Engine behaviour on directed graphs, including directed faults."""

from typing import Any

from repro.graphs import DiGraph
from repro.sim import (
    SILENCE,
    Context,
    EdgeFault,
    Engine,
    FaultSchedule,
    NodeProgram,
    Receive,
    Transmit,
)


class Beacon(NodeProgram):
    def __init__(self, message: Any = "b") -> None:
        self.message = message

    def act(self, ctx: Context):
        return Transmit(self.message)


class Listener(NodeProgram):
    def __init__(self) -> None:
        self.heard: list[Any] = []

    def act(self, ctx: Context):
        return Receive()

    def on_observe(self, ctx: Context, heard: Any) -> None:
        self.heard.append(heard)


def test_directed_edge_fault_removes_one_direction():
    g = DiGraph(edges=[(0, 1), (1, 0)])
    l1 = Listener()
    faults = FaultSchedule(edge_faults=[EdgeFault(slot=2, u=0, v=1)])
    engine = Engine(g, {0: Beacon(), 1: l1}, initiators={0}, faults=faults)
    engine.run(4)
    assert l1.heard == ["b", "b", SILENCE, SILENCE]


def test_directed_edge_addition():
    g = DiGraph(nodes=[0, 1])
    l1 = Listener()
    faults = FaultSchedule(
        edge_faults=[EdgeFault(slot=1, u=0, v=1, kind="add")]
    )
    engine = Engine(g, {0: Beacon(), 1: l1}, initiators={0}, faults=faults)
    engine.run(3)
    assert l1.heard == [SILENCE, "b", "b"]


def test_in_neighbour_collision_on_digraph():
    # Both 0 and 1 can reach 2; 2 hears a collision. 2 can reach nobody.
    g = DiGraph(edges=[(0, 2), (1, 2)])
    l2 = Listener()
    engine = Engine(
        g, {0: Beacon("a"), 1: Beacon("b"), 2: l2}, initiators={0, 1}
    )
    result = engine.run(2)
    assert l2.heard == [SILENCE, SILENCE]
    assert result.metrics.collisions == 2


def test_out_edges_do_not_cause_reception():
    # 0 -> 1 only; node 0 listening must not hear node 1's transmissions
    # ... there are none possible; but node 0 transmitting must not
    # deliver to itself, and node 1 transmitting (spontaneity off) is
    # blocked — here we allow it and check direction.
    g = DiGraph(edges=[(0, 1)])
    l0 = Listener()
    engine = Engine(
        g, {0: l0, 1: Beacon("x")}, initiators={1}, enforce_no_spontaneous=False
    )
    engine.run(2)
    assert l0.heard == [SILENCE, SILENCE]
