"""The bench perf gate: seeded slowdowns fail --check and the regression
flamegraph names the injected hot frame."""

import json
import pathlib
import sys
import time

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent / "benchmarks"))

import bench_engine  # noqa: E402


def _injected_hotspot(seconds: float = 0.3) -> None:
    """The seeded slowdown: a busy frame the flamegraph must name."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestSeededSlowdown:
    def test_slowdown_fails_gate_and_flamegraph_names_culprit(
        self, tmp_path, monkeypatch
    ):
        # Baseline recorded "fast"; the measured engine then stalls in
        # _injected_hotspot, so throughput collapses beyond tolerance.
        baseline = tmp_path / "BENCH_engine.json"
        baseline.write_text(json.dumps({
            "schema": "repro-bench-engine/1",
            "combined_slots_per_sec": 100000.0,
            "topologies": {name: {} for name, _ in bench_engine.TOPOLOGIES},
        }), encoding="utf-8")

        def slow_measure(**kwargs):
            _injected_hotspot()
            return {"schema": "repro-bench-engine/1",
                    "combined_slots_per_sec": 10.0}

        monkeypatch.setattr(bench_engine, "measure_slots_per_sec", slow_measure)
        ok, message = bench_engine.check_against_baseline(baseline)
        assert not ok
        assert "REGRESSION" in message

        flame = tmp_path / "gate.html"
        culprit = bench_engine.profile_regression(flame, message=message)
        assert culprit is not None
        assert "_injected_hotspot" in culprit
        doc = flame.read_text(encoding="utf-8")
        assert "_injected_hotspot" in doc
        assert message.split("->")[0].strip()[:40] in doc or "REGRESSION" in doc

    def test_healthy_measurement_passes_gate(self, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH_engine.json"
        baseline.write_text(json.dumps({
            "schema": "repro-bench-engine/1",
            "combined_slots_per_sec": 100.0,
        }), encoding="utf-8")
        monkeypatch.setattr(
            bench_engine, "measure_slots_per_sec",
            lambda **kw: {"schema": "repro-bench-engine/1",
                          "combined_slots_per_sec": 99.0},
        )
        ok, message = bench_engine.check_against_baseline(baseline)
        assert ok


class TestPerfOverheadMeasurement:
    def test_reports_all_three_legs(self):
        result = bench_engine.measure_perf_overhead(slots=50, rounds=1)
        assert result["disabled_slots_per_sec"] > 0
        assert result["sampled_slots_per_sec"] > 0
        assert result["traced_slots_per_sec"] > 0
        assert isinstance(result["sampler_overhead_pct"], float)
        assert isinstance(result["tracemalloc_overhead_pct"], float)
        # No session may leak out of the measurement.
        from repro.perf import core as perf_core

        assert perf_core.get_active() is None
