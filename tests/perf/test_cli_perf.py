"""The perf plane end-to-end through the CLI: --perf, perf record|flame|diff,
obs perf, obs explain --perf."""

import json
import os

import pytest

from repro.cli import main
from repro.perf import core as perf_core


@pytest.fixture(autouse=True)
def clean_perf_state():
    yield
    # A failed assertion mid-command must not leak an ambient session or
    # the env gate into later tests.
    perf_core.set_active(None)
    os.environ.pop("REPRO_PERF", None)


def _read_records(path):
    return [json.loads(line) for line in path.read_text(encoding="utf-8").splitlines()]


class TestPerfFlag:
    def test_gap_with_perf_emits_records(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        code = main(["gap", "--quick", "--reps", "2", "--seed", "1",
                     "--telemetry", str(log), "--perf"])
        assert code == 0
        records = _read_records(log)
        profiles = [r for r in records if r["kind"] == "perf_profile"]
        assert len(profiles) == 1
        assert profiles[0]["samples"] >= 0
        assert profiles[0]["hz"] == 97
        spans = [r for r in records if r["kind"] == "perf_span"]
        assert {"engine.run", "engine.slot_batch"} <= {s["label"] for s in spans}
        assert "[perf]" in capsys.readouterr().out
        # Session torn down and env gate restored.
        assert perf_core.get_active() is None
        assert "REPRO_PERF" not in os.environ

    def test_perf_out_writes_artifacts(self, tmp_path, capsys):
        base = tmp_path / "prof"
        code = main(["gap", "--quick", "--reps", "2", "--seed", "1",
                     "--perf", "--perf-hz", "250", "--perf-out", str(base)])
        assert code == 0
        folded = (tmp_path / "prof.folded").read_text(encoding="utf-8")
        html = (tmp_path / "prof.html").read_text(encoding="utf-8")
        assert html.startswith("<!doctype html>")
        out = capsys.readouterr().out
        assert "250 Hz" in out
        # Without --telemetry the span attribution prints to stdout.
        assert "engine.run" in out

    def test_manifest_excludes_perf_config(self, tmp_path):
        log = tmp_path / "run.jsonl"
        code = main(["gap", "--quick", "--reps", "2", "--seed", "1",
                     "--telemetry", str(log), "--perf"])
        assert code == 0
        manifest = json.loads(
            (tmp_path / "run.jsonl.manifest.json").read_text(encoding="utf-8")
        )
        assert "perf" not in manifest["config"]
        assert "perf_hz" not in manifest["config"]


class TestPerfRecord:
    def test_record_writes_folded_and_flamegraph(self, tmp_path, capsys):
        base = tmp_path / "rec"
        code = main(["perf", "record", "--out", str(base), "--hz", "250",
                     "gap", "--quick", "--reps", "2", "--seed", "1"])
        assert code == 0
        assert (tmp_path / "rec.folded").exists()
        assert (tmp_path / "rec.html").read_text(encoding="utf-8").startswith(
            "<!doctype html>"
        )
        out = capsys.readouterr().out
        assert "[perf]" in out
        assert "Hottest frames" in out

    def test_record_requires_a_command(self):
        with pytest.raises(SystemExit):
            main(["perf", "record"])

    def test_record_refuses_recursion(self):
        with pytest.raises(SystemExit):
            main(["perf", "record", "perf", "record", "gap"])


class TestPerfFlameAndDiff:
    def test_flame_from_folded(self, tmp_path, capsys):
        folded = tmp_path / "p.folded"
        folded.write_text("main;hot 9\nmain;cold 1\n", encoding="utf-8")
        out_html = tmp_path / "p.html"
        code = main(["perf", "flame", str(folded), "--out", str(out_html)])
        assert code == 0
        assert "hot" in out_html.read_text(encoding="utf-8")

    def test_flame_is_byte_stable(self, tmp_path):
        folded = tmp_path / "p.folded"
        folded.write_text("main;hot 9\nmain;cold 1\n", encoding="utf-8")
        a, b = tmp_path / "a.html", tmp_path / "b.html"
        main(["perf", "flame", str(folded), "--out", str(a)])
        main(["perf", "flame", str(folded), "--out", str(b)])
        assert a.read_bytes() == b.read_bytes()

    def test_flame_rejects_empty_input(self, tmp_path):
        empty = tmp_path / "empty.folded"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["perf", "flame", str(empty), "--out", str(tmp_path / "x.html")])

    def test_diff_reports_drift(self, tmp_path, capsys):
        before = tmp_path / "before.folded"
        after = tmp_path / "after.folded"
        before.write_text("main;fast 90\nmain;slow 10\n", encoding="utf-8")
        after.write_text("main;fast 50\nmain;slow 50\n", encoding="utf-8")
        code = main(["perf", "diff", str(before), str(after), "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["frame"] == "slow"
        assert rows[0]["delta_share"] == pytest.approx(0.4)


class TestObsPerf:
    @pytest.fixture()
    def ingested(self, tmp_path):
        log = tmp_path / "run.jsonl"
        db = tmp_path / "runs.db"
        code = main(["gap", "--quick", "--reps", "2", "--seed", "1",
                     "--telemetry", str(log), "--perf",
                     "--obs-db", str(db)])
        assert code == 0
        return db

    def test_obs_perf_overview(self, ingested, capsys):
        code = main(["obs", "perf", str(ingested), "--json"])
        assert code == 0
        overview = json.loads(capsys.readouterr().out)
        assert overview["samples"] is not None
        labels = {row["label"] for row in overview["spans"]}
        assert "engine.run" in labels

    def test_obs_perf_metric_trend_gate(self, ingested, capsys):
        # One point: nothing to compare against -> the gate passes.
        code = main(["obs", "perf", str(ingested),
                     "--metric", "perf.span.engine.run.secs", "--check"])
        assert code == 0

    def test_obs_explain_perf(self, ingested, capsys):
        code = main(["obs", "explain", str(ingested), "--perf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "perf.span.engine.run.secs" in out
        # The flag selects what to print; it must NOT profile the
        # explain command itself.
        assert "[perf]" not in out

    def test_obs_perf_without_perf_metrics_fails(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        db = tmp_path / "plain.db"
        code = main(["gap", "--quick", "--reps", "2", "--seed", "1",
                     "--telemetry", str(log), "--obs-db", str(db)])
        assert code == 0
        # Bad invocation (no perf data to inspect) is exit code 2 —
        # distinct from 1, the regression verdict of --check.
        code = main(["obs", "perf", str(db)])
        assert code == 2
        assert "no perf metrics" in capsys.readouterr().err
