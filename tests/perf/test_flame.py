"""Folded-profile algebra and the deterministic flamegraph renderer."""

import json

from repro.perf import (
    diff_folded,
    load_stacks,
    merge_folded,
    parse_folded,
    render_flamegraph,
    top_frames,
)

STACKS = {
    "main;engine.run;resolve": 60,
    "main;engine.run;rng": 30,
    "main;report": 10,
}


class TestFoldedAlgebra:
    def test_parse_skips_malformed_lines(self):
        text = "a;b 3\nnot-a-count x\n\n  c 2  \nd\n"
        assert parse_folded(text) == {"a;b": 3, "c": 2}

    def test_parse_merges_duplicates(self):
        assert parse_folded("a;b 1\na;b 2\n") == {"a;b": 3}

    def test_merge_sums_profiles(self):
        merged = merge_folded({"a": 1, "b": 2}, {"b": 3, "c": 4})
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_top_frames_self_vs_total(self):
        rows = {row["frame"]: row for row in top_frames(STACKS)}
        assert rows["engine.run"]["total"] == 90
        assert rows["engine.run"]["self"] == 0
        assert rows["resolve"]["self"] == 60
        assert rows["main"]["total"] == 100
        assert rows["main"]["share"] == 1.0

    def test_top_frames_recursion_counted_once(self):
        rows = {row["frame"]: row
                for row in top_frames({"f;f;f": 5, "g": 5})}
        assert rows["f"]["total"] == 5

    def test_diff_ranks_growth_first(self):
        before = {"main;fast": 90, "main;slow": 10}
        after = {"main;fast": 50, "main;slow": 50}
        rows = diff_folded(before, after)
        assert rows[0]["frame"] == "slow"
        assert rows[0]["delta_share"] == 0.4
        fast = next(row for row in rows if row["frame"] == "fast")
        assert fast["delta_share"] == -0.4

    def test_diff_normalizes_by_profile_length(self):
        # Twice the samples with identical shape = no drift.
        before = {"a;b": 10, "a;c": 10}
        after = {"a;b": 20, "a;c": 20}
        assert all(row["delta_share"] == 0.0 for row in diff_folded(before, after))


class TestLoadStacks:
    def test_folded_file(self, tmp_path):
        path = tmp_path / "p.folded"
        path.write_text("a;b 3\nc 1\n", encoding="utf-8")
        assert load_stacks(path) == {"a;b": 3, "c": 1}

    def test_telemetry_log_merges_profiles(self, tmp_path):
        records = [
            {"kind": "manifest", "ts": 1.0},
            {"kind": "perf_profile", "ts": 2.0, "samples": 3, "hz": 97,
             "dur_s": 1.0, "stacks": {"a;b": 2, "c": 1}},
            {"kind": "perf_profile", "ts": 3.0, "samples": 4, "hz": 97,
             "dur_s": 1.0, "stacks": {"a;b": 4}},
        ]
        path = tmp_path / "log.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        assert load_stacks(path) == {"a;b": 6, "c": 1}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"kind": "perf_profile", "stacks": {"a": 1}})
            + '\n{"kind": "perf_pro', encoding="utf-8"
        )
        assert load_stacks(path) == {"a": 1}


class TestFlamegraph:
    def test_byte_stable_across_renders(self):
        first = render_flamegraph(STACKS, title="t")
        second = render_flamegraph(dict(reversed(list(STACKS.items()))), title="t")
        assert first == second

    def test_self_contained_and_scriptless(self):
        doc = render_flamegraph(STACKS, title="profile & test")
        assert doc.startswith("<!doctype html>")
        assert "<script" not in doc
        assert "http" not in doc.split("</style>")[1]  # no external fetches
        assert "profile &amp; test" in doc

    def test_frames_and_counts_present(self):
        doc = render_flamegraph(STACKS, title="t", subtitle="sub")
        for frame in ("engine.run", "resolve", "rng", "report"):
            assert frame in doc
        assert "100 samples" in doc
        assert "sub" in doc

    def test_empty_profile_renders(self):
        doc = render_flamegraph({}, title="empty")
        assert "empty" in doc
