"""The sampling profiler: lifecycle, span attribution, traced memory."""

import threading
import time

import pytest

from repro.perf import PerfSession, Sampler, hz_from_env, parse_folded
from repro.perf import core as perf_core
from repro.perf.sampler import _SPANS


def _spin(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    ticks = 0
    while time.perf_counter() < deadline:
        ticks += 1
    return ticks


class TestSamplerLifecycle:
    def test_start_is_idempotent(self):
        sampler = Sampler(500.0)
        sampler.start()
        first_thread = sampler._thread
        sampler.start()  # no-op: same thread keeps running
        assert sampler._thread is first_thread
        sampler.stop()
        assert not sampler.running

    def test_stop_is_idempotent_and_without_start_a_noop(self):
        sampler = Sampler(500.0)
        sampler.stop()  # never started
        assert sampler.wall_s == 0.0
        sampler.start()
        _spin(0.02)
        sampler.stop()
        wall = sampler.wall_s
        assert wall > 0.0
        sampler.stop()  # second stop must not double-count wall time
        assert sampler.wall_s == wall

    def test_restart_accumulates(self):
        sampler = Sampler(500.0)
        for _ in range(2):
            sampler.start()
            _spin(0.02)
            sampler.stop()
        assert sampler.wall_s >= 0.03

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            Sampler(0)

    def test_collects_stacks_from_working_threads(self):
        sampler = Sampler(500.0)
        sampler.start()
        _spin(0.1)
        sampler.stop()
        assert sampler.samples > 0
        assert sum(sampler.counts.values()) == sampler.samples
        assert any("test_sampler.py:_spin" in stack for stack in sampler.counts)

    def test_folded_text_roundtrips(self):
        sampler = Sampler(500.0)
        sampler.start()
        _spin(0.05)
        sampler.stop()
        parsed = parse_folded(sampler.folded_text())
        assert parsed == sampler.counts


class TestSpanAccounting:
    def test_push_pop_clears_registry(self):
        session = PerfSession(200.0, memory=False).start()
        try:
            tid = threading.get_ident()
            session.span_push("outer")
            session.span_push("inner")
            assert _SPANS[tid] == ("outer", "inner")
            session.span_pop()
            session.span_pop()
            assert tid not in _SPANS
        finally:
            session.stop()

    def test_samples_attributed_to_innermost_label(self):
        session = PerfSession(500.0, memory=False).start()
        try:
            session.span_push("hot.work")
            _spin(0.1)
            session.span_pop()
        finally:
            session.stop()
        rows = {row["label"]: row for row in session.span_table()}
        assert rows["hot.work"]["samples"] > 0
        assert rows["hot.work"]["secs"] == pytest.approx(0.1, rel=0.5)
        assert any(stack.startswith("hot.work;") for stack in session.counts)

    def test_traced_memory_peak(self):
        session = PerfSession(200.0, memory=True).start()
        try:
            session.span_push("alloc")
            blob = bytearray(4 * 1024 * 1024)
            del blob
            session.span_pop()
        finally:
            session.stop()
        rows = {row["label"]: row for row in session.span_table()}
        assert rows["alloc"]["mem_peak_kb"] >= 4000.0

    def test_nested_spans_keep_parent_peak(self):
        session = PerfSession(200.0, memory=True).start()
        try:
            session.span_push("parent")
            session.span_push("child")
            blob = bytearray(2 * 1024 * 1024)
            del blob
            session.span_pop()
            session.span_pop()
        finally:
            session.stop()
        rows = {row["label"]: row for row in session.span_table()}
        # The fold-then-reset_peak discipline must credit the child's
        # allocation to the parent window too.
        assert rows["parent"]["mem_peak_kb"] >= rows["child"]["mem_peak_kb"]
        assert rows["child"]["mem_peak_kb"] >= 2000.0

    def test_stop_closes_leftover_spans(self):
        session = PerfSession(200.0, memory=False).start()
        session.span_push("left.open")
        session.stop()
        assert threading.get_ident() not in _SPANS
        rows = {row["label"]: row for row in session.span_table()}
        assert rows["left.open"]["count"] == 1

    def test_session_start_stop_idempotent(self):
        session = PerfSession(200.0, memory=False)
        assert session.start() is session.start()
        session.stop()
        session.stop()
        assert not session.running

    def test_emit_writes_schema_valid_records(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.schema import validate_record

        session = PerfSession(500.0, memory=False).start()
        session.span_push("work")
        _spin(0.05)
        session.span_pop()
        session.stop()
        recorder = Telemetry.buffered()
        session.emit(recorder)
        records = recorder.drain()
        kinds = [record["kind"] for record in records]
        assert kinds.count("perf_profile") == 1
        assert "perf_span" in kinds
        assert all(not validate_record(record) for record in records)

    def test_emit_caps_stacks(self):
        session = PerfSession(500.0, memory=False)
        session.sampler.counts = {f"frame:{i}": i + 1 for i in range(50)}
        session.sampler.samples = sum(session.sampler.counts.values())

        class Sink:
            def __init__(self):
                self.records = []

            def emit(self, kind, **fields):
                self.records.append({"kind": kind, **fields})

        sink = Sink()
        session.emit(sink, top_stacks=10)
        profile = next(r for r in sink.records if r["kind"] == "perf_profile")
        assert len(profile["stacks"]) == 10
        assert profile["stacks_dropped"] == 40
        # Heaviest stacks survive the cap.
        assert "frame:49" in profile["stacks"]


class TestAmbientRegistry:
    def test_helpers_are_noops_without_session(self):
        assert perf_core.get_active() is None
        perf_core.span_push("nobody.listening")
        perf_core.span_pop()
        assert threading.get_ident() not in _SPANS
        with perf_core.perf_span("still.nobody"):
            pass

    def test_activate_restores_previous(self):
        outer = PerfSession(200.0, memory=False)
        with perf_core.activate(outer):
            assert perf_core.get_active() is outer
            inner = PerfSession(200.0, memory=False)
            with perf_core.activate(inner):
                assert perf_core.get_active() is inner
            assert perf_core.get_active() is outer
        assert perf_core.get_active() is None

    def test_sampler_survives_concurrent_telemetry_activation(self):
        """Telemetry recorders churning in another thread must not
        disturb a running perf session (independent registries)."""
        from repro.telemetry import Telemetry
        from repro.telemetry import activate as tel_activate

        session = PerfSession(500.0, memory=False)
        errors = []

        def churn():
            try:
                for _ in range(25):
                    recorder = Telemetry.buffered()
                    with recorder, tel_activate(recorder):
                        with recorder.span("tel.window"):
                            _spin(0.004)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        with perf_core.activate(session):
            worker = threading.Thread(target=churn)
            worker.start()
            _spin(0.05)
            worker.join()
        assert not errors
        assert session.sampler.samples > 0
        # Telemetry spans forwarded into the perf session from the
        # worker thread.
        labels = {row["label"] for row in session.span_table()}
        assert "tel.window" in labels
        assert not _SPANS


class TestEnvGate:
    def test_unset_means_off(self):
        assert hz_from_env({}) is None
        assert hz_from_env({"REPRO_PERF": ""}) is None
        assert hz_from_env({"REPRO_PERF": "0"}) is None

    def test_numeric_value_is_hz(self):
        assert hz_from_env({"REPRO_PERF": "250"}) == 250.0

    def test_non_numeric_truthy_falls_back_to_default(self):
        assert hz_from_env({"REPRO_PERF": "yes"}) == 97.0

    def test_to_env_roundtrips(self):
        env: dict = {}
        PerfSession(123.0).to_env(env)
        assert hz_from_env(env) == 123.0
