"""Exhaustive small-n verification of Theorem 12 on the real engine."""

import pytest

from repro.errors import ExperimentError
from repro.lowerbound.bruteforce import (
    WorstCase,
    all_hidden_sets,
    exhaustive_cn_worst_case,
)
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs
from repro.protocols.scheduled import make_scheduled_programs


class TestAllHiddenSets:
    def test_count(self):
        assert sum(1 for _ in all_hidden_sets(5)) == 2**5 - 1

    def test_all_nonempty_and_in_range(self):
        for s in all_hidden_sets(4):
            assert s
            assert s <= frozenset({1, 2, 3, 4})

    def test_no_duplicates(self):
        sets = list(all_hidden_sets(6))
        assert len(sets) == len(set(sets))


class TestExhaustiveWorstCase:
    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_dfs_obeys_theorem12_and_2n(self, n):
        wc = exhaustive_cn_worst_case(lambda g: make_dfs_programs(g, 0), n)
        assert wc.all_completed
        assert wc.instances == 2**n - 1
        assert wc.satisfies_theorem12()
        assert wc.worst_slots <= 2 * (n + 2)

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_round_robin_obeys_theorem12(self, n):
        wc = exhaustive_cn_worst_case(
            lambda g: make_round_robin_programs(g, 0, frame_size=n + 2), n
        )
        assert wc.all_completed
        assert wc.satisfies_theorem12()
        # TDMA's worst case is Theta(n): the frame must reach min(S).
        assert wc.worst_slots >= n - 1

    def test_worst_set_is_a_hard_instance(self):
        n = 8
        wc = exhaustive_cn_worst_case(lambda g: make_dfs_programs(g, 0), n)
        # Re-running just the worst set reproduces the worst time.
        from repro.graphs import c_n
        from repro.protocols.base import run_broadcast

        g = c_n(n, wc.worst_set)
        result = run_broadcast(
            g, make_dfs_programs(g, 0), initiators={0},
            max_slots=4 * (n + 2), stop="informed",
        )
        assert result.broadcast_completion_slot(source=0) == wc.worst_slots

    def test_limit_sets(self):
        wc = exhaustive_cn_worst_case(
            lambda g: make_dfs_programs(g, 0), 20, limit_sets=25
        )
        assert wc.instances == 25

    def test_too_large_without_limit_rejected(self):
        with pytest.raises(ExperimentError):
            exhaustive_cn_worst_case(lambda g: make_dfs_programs(g, 0), 20)

    def test_even_topology_aware_schedules_cannot_beat_it(self):
        # A scheduled protocol computed FROM the topology (cheating: the
        # radio model forbids this knowledge) does beat n/8 — showing
        # the lower bound is about unknown topology, not about radio
        # physics.  This is the Section-4-adjacent sanity contrast.
        from repro.core.schedule import greedy_layer_schedule

        n = 8

        def make(g):
            schedule = greedy_layer_schedule(g, 0)
            return make_scheduled_programs(g, 0, schedule)

        wc = exhaustive_cn_worst_case(make, n)
        assert wc.all_completed
        assert wc.worst_slots + 1 < n / 2  # constant-ish: 3 layers
