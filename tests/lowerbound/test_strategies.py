"""Tests for explorer strategies."""

import pytest

from repro.errors import GameError
from repro.lowerbound.hitting_game import Answer, play_game
from repro.lowerbound.strategies import (
    BinarySplittingStrategy,
    DoublingStrategy,
    RandomStrategy,
    SingletonSweepStrategy,
)


class TestSingletonSweep:
    def test_moves_are_singletons_in_order(self):
        strat = SingletonSweepStrategy()
        strat.reset(5)
        history = []
        for expected in (1, 2, 3):
            move = strat.next_move(history)
            assert move == frozenset({expected})
            history.append((move, Answer("miss", expected)))

    def test_skips_known_misses(self):
        strat = SingletonSweepStrategy()
        strat.reset(5)
        history = [(frozenset({1}), Answer("miss", 1))]
        assert strat.next_move(history) == frozenset({2})

    def test_wins_within_n_for_any_set(self):
        for s in ({1}, {10}, {3, 7}, set(range(1, 11))):
            outcome = play_game(SingletonSweepStrategy(), 10, s, max_moves=10)
            assert outcome.won
            assert outcome.moves_used <= 10
            assert outcome.hit_element in s

    def test_reset_required(self):
        strat = SingletonSweepStrategy()
        with pytest.raises(GameError):
            strat.reset(0)


class TestDoubling:
    def test_sizes_double_then_wrap(self):
        strat = DoublingStrategy()
        strat.reset(16)
        sizes = [len(strat.next_move([])) for _ in range(5)]
        assert sizes == [1, 2, 4, 8, 16]
        assert len(strat.next_move([])) == 1  # wrapped

    def test_moves_within_universe(self):
        strat = DoublingStrategy()
        strat.reset(10)
        for _ in range(20):
            move = strat.next_move([])
            assert move <= frozenset(range(1, 11))
            assert move

    def test_wins_eventually_on_singleton_set(self):
        outcome = play_game(DoublingStrategy(), 16, {13}, max_moves=200)
        assert outcome.won


class TestBinarySplitting:
    def test_halves_the_pool(self):
        strat = BinarySplittingStrategy()
        strat.reset(16)
        move = strat.next_move([])
        assert len(move) == 8

    def test_prunes_misses(self):
        strat = BinarySplittingStrategy()
        strat.reset(6)
        history = [(frozenset({1}), Answer("miss", 1)), (frozenset({2}), Answer("miss", 2))]
        move = strat.next_move(history)
        assert 1 not in move and 2 not in move

    def test_falls_back_to_singletons_on_small_pool(self):
        strat = BinarySplittingStrategy()
        strat.reset(2)
        move = strat.next_move([])
        assert len(move) == 1

    def test_wins_on_lucky_sets(self):
        outcome = play_game(BinarySplittingStrategy(), 16, {5}, max_moves=64)
        assert outcome.won


class TestRandomStrategy:
    def test_density_validation(self):
        with pytest.raises(GameError):
            RandomStrategy(0, density=0.0)

    def test_deterministic_given_seed(self):
        a = RandomStrategy(5)
        b = RandomStrategy(5)
        a.reset(20)
        b.reset(20)
        assert [a.next_move([]) for _ in range(5)] == [
            b.next_move([]) for _ in range(5)
        ]

    def test_reset_restarts_stream(self):
        strat = RandomStrategy(5)
        strat.reset(20)
        first = [strat.next_move([]) for _ in range(3)]
        strat.reset(20)
        again = [strat.next_move([]) for _ in range(3)]
        assert first == again

    def test_moves_nonempty(self):
        strat = RandomStrategy(3, density=0.01)
        strat.reset(10)
        for _ in range(30):
            assert strat.next_move([])

    def test_wins_eventually(self):
        outcome = play_game(RandomStrategy(1), 12, {7}, max_moves=500)
        assert outcome.won
