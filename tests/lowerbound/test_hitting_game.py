"""Tests for the hitting game (Definition 5)."""

import pytest

from repro.errors import GameError
from repro.lowerbound.hitting_game import Answer, HittingGame, Referee, play_game
from repro.lowerbound.strategies import SingletonSweepStrategy


class TestAnswer:
    def test_hit_needs_element(self):
        with pytest.raises(GameError):
            Answer("hit")

    def test_nothing_carries_no_element(self):
        with pytest.raises(GameError):
            Answer("nothing", 3)

    def test_valid_answers(self):
        assert Answer("hit", 2).element == 2
        assert Answer("miss", 5).kind == "miss"
        assert Answer("nothing").element is None


class TestReferee:
    def test_validation(self):
        with pytest.raises(GameError):
            Referee(0, {1})
        with pytest.raises(GameError):
            Referee(5, set())
        with pytest.raises(GameError):
            Referee(5, {6})

    def test_hit_on_singleton_s_intersection(self):
        ref = Referee(10, {4, 7})
        answer = ref.answer({4, 9})  # {4,9} ∩ S = {4}; note 9 ∉ S so comp∩ = {9}
        assert answer.kind == "hit"
        assert answer.element == 4
        assert ref.ended

    def test_game_over_after_hit(self):
        ref = Referee(10, {4})
        ref.answer({4})
        with pytest.raises(GameError):
            ref.answer({5})

    def test_miss_on_singleton_complement_intersection(self):
        ref = Referee(5, {1, 2, 3, 4})  # complement = {5}
        answer = ref.answer({3, 4, 5})  # M∩S = {3,4} (not singleton), M∩comp = {5}
        assert answer.kind == "miss"
        assert answer.element == 5
        assert not ref.ended

    def test_nothing_when_both_ambiguous(self):
        ref = Referee(10, {1, 2, 3})
        answer = ref.answer({1, 2, 4, 5})  # 2 in S, 2 out
        assert answer.kind == "nothing"

    def test_empty_move_answered_nothing(self):
        ref = Referee(10, {1})
        assert ref.answer(set()).kind == "nothing"

    def test_hit_takes_precedence_over_miss(self):
        # |M∩S| = 1 and |M∩comp| = 1 simultaneously → Definition 5's
        # first rule applies: hit, terminate.
        ref = Referee(4, {1, 2, 3})  # complement {4}
        answer = ref.answer({3, 4})
        assert answer.kind == "hit"
        assert answer.element == 3

    def test_moves_outside_universe_rejected(self):
        ref = Referee(5, {1})
        with pytest.raises(GameError):
            ref.answer({7})

    def test_full_universe_move(self):
        ref = Referee(6, {2})
        answer = ref.answer(set(range(1, 7)))
        assert answer.kind == "hit"  # |S| = 1 means M∩S singleton


class TestHittingGameWrapper:
    def test_history_recorded(self):
        game = HittingGame(6, {5})
        game.move({1})
        game.move({5})
        assert game.moves_used == 2
        assert game.won
        assert game.history[0][1].kind == "miss"
        assert game.history[1][1].kind == "hit"


class TestPlayGame:
    def test_sweep_wins(self):
        outcome = play_game(SingletonSweepStrategy(), 12, {9}, max_moves=20)
        assert outcome.won
        assert outcome.hit_element == 9
        assert outcome.moves_used == 9

    def test_cutoff_counts_as_loss(self):
        outcome = play_game(SingletonSweepStrategy(), 12, {9}, max_moves=3)
        assert not outcome.won
        assert outcome.moves_used == 3
        assert outcome.hit_element is None

    def test_history_length_matches(self):
        outcome = play_game(SingletonSweepStrategy(), 8, {8}, max_moves=20)
        assert len(outcome.history) == outcome.moves_used
