"""Tests for the protocol-to-game reduction (Lemmas 5-7, executable)."""

import pytest

from repro.errors import GameError
from repro.lowerbound.adversary import foil_strategy
from repro.lowerbound.hitting_game import play_game
from repro.lowerbound.reduction import (
    BinarySplitAbstractProtocol,
    ProtocolStrategy,
    RoundRobinAbstractProtocol,
    explorer_from_protocol,
    run_abstract_protocol,
)


class TestRoundRobinAbstract:
    def test_completes_at_min_of_s(self):
        proto = RoundRobinAbstractProtocol(10)
        assert run_abstract_protocol(proto, {4, 8}, 20) == 4
        assert run_abstract_protocol(proto, {10}, 20) == 10
        assert run_abstract_protocol(proto, {1}, 20) == 1

    def test_max_rounds_cutoff(self):
        proto = RoundRobinAbstractProtocol(10)
        assert run_abstract_protocol(proto, {9}, 5) is None

    def test_history_records_misses(self):
        # Implicitly: round r < min(S) appends (r, 0); verified via pi's
        # dependence on history length only (still completes correctly).
        proto = RoundRobinAbstractProtocol(6)
        assert run_abstract_protocol(proto, {6}, 6) == 6

    def test_invalid_s(self):
        proto = RoundRobinAbstractProtocol(5)
        with pytest.raises(GameError):
            run_abstract_protocol(proto, set(), 5)
        with pytest.raises(GameError):
            run_abstract_protocol(proto, {9}, 5)


class TestBinarySplitAbstract:
    def test_completes_for_various_sets(self):
        proto = BinarySplitAbstractProtocol(16)
        for s in ({3}, {5, 6}, set(range(1, 17)), {16}):
            rounds = run_abstract_protocol(proto, s, 4 * 16)
            assert rounds is not None

    def test_fast_when_lucky(self):
        # A single element is found by some bit round quickly when its
        # bit pattern isolates it... with S = {1}: group (bit0=1) = odds —
        # not singleton; the sweep phase still finishes within 2b + n.
        proto = BinarySplitAbstractProtocol(16)
        rounds = run_abstract_protocol(proto, {1}, 100)
        assert rounds is not None

    def test_transmit_sets_are_bit_groups(self):
        proto = BinarySplitAbstractProtocol(8)
        t1 = proto.transmit_set(1, ())
        assert t1 == frozenset(p for p in range(1, 9) if p & 1 == 0)
        assert proto.transmit_set(0, ()) == frozenset()


class TestProtocolStrategy:
    def test_lemma7_game_no_slower_than_twice_protocol(self):
        # If the protocol completes in r rounds, the compiled explorer
        # wins the game within 2r moves (often earlier).
        for n in (8, 16):
            for s in ({3}, {n}, set(range(1, n + 1)), {2, 5}):
                proto_rounds = run_abstract_protocol(
                    RoundRobinAbstractProtocol(n), s, 4 * n
                )
                outcome = play_game(
                    ProtocolStrategy(RoundRobinAbstractProtocol), n, s, max_moves=8 * n
                )
                assert outcome.won
                assert outcome.moves_used <= 2 * proto_rounds

    def test_requires_reset(self):
        strat = ProtocolStrategy(RoundRobinAbstractProtocol)
        with pytest.raises(GameError):
            strat.next_move([])

    def test_explorer_from_protocol_wrapper(self):
        strat = explorer_from_protocol(RoundRobinAbstractProtocol)
        outcome = play_game(strat, 12, {5}, max_moves=48)
        assert outcome.won

    def test_adversary_defeats_compiled_protocols(self):
        # Theorem 12's engine: find_set stalls the compiled explorer for
        # n/2 moves, hence the protocol for n/4 rounds.
        for proto_factory in (RoundRobinAbstractProtocol, BinarySplitAbstractProtocol):
            n = 32
            result = foil_strategy(ProtocolStrategy(proto_factory), n, n // 2)
            assert result.hidden_set
            assert result.survived_moves >= n // 2
            assert result.consistent
            rounds = run_abstract_protocol(
                proto_factory(n), result.hidden_set, 8 * n
            )
            survived_rounds = (rounds - 1) if rounds is not None else 8 * n
            assert survived_rounds >= n // 4

    def test_simulation_matches_protocol_history(self):
        # With any S the move pair of round i must equal (T_i^(1), T_i^(0))
        # of the real protocol execution whenever the game is still live.
        n = 12
        s = {7, 8}
        proto = RoundRobinAbstractProtocol(n)
        strat = ProtocolStrategy(RoundRobinAbstractProtocol)
        strat.reset(n)
        from repro.lowerbound.hitting_game import Referee

        referee = Referee(n, s)
        history = []
        protocol_history = []
        for round_index in range(1, 7):  # min(S) = 7, so 6 live rounds
            t1 = proto.transmit_set(1, tuple(protocol_history))
            t0 = proto.transmit_set(0, tuple(protocol_history))
            move1 = strat.next_move(history)
            assert move1 == t1
            answer1 = referee.answer(move1)
            history.append((move1, answer1))
            move0 = strat.next_move(history)
            assert move0 == t0
            answer0 = referee.answer(move0)
            history.append((move0, answer0))
            complement = set(range(1, n + 1)) - s
            lone = t0 & complement
            protocol_history.append(
                (next(iter(lone)), 0) if len(lone) == 1 else None
            )
