"""Tests for find_set (Lemmas 9-10) and strategy foiling (Prop. 11)."""

import random

import pytest

from repro.errors import GameError
from repro.lowerbound.adversary import audit_charges, find_set, foil_strategy
from repro.lowerbound.hitting_game import Referee
from repro.lowerbound.strategies import (
    BinarySplittingStrategy,
    DoublingStrategy,
    RandomStrategy,
    SingletonSweepStrategy,
)


def assert_lemma9(moves, s, n):
    """Both Lemma 9 conditions for every move."""
    complement = set(range(1, n + 1)) - set(s)
    for m in map(set, moves):
        assert len(m & set(s)) != 1, (m, s)
        assert (len(m & complement) == 1) == (len(m) == 1), (m, s)


class TestFindSet:
    def test_no_singleton_moves_leaves_s_full(self):
        moves = [{1, 2, 3}, {4, 5}, {2, 6}]
        s = find_set(moves, 8)
        assert s == frozenset(range(1, 9))

    def test_singleton_moves_removed(self):
        moves = [{3}, {5}]
        s = find_set(moves, 8)
        assert 3 not in s and 5 not in s
        assert_lemma9(moves, s, 8)

    def test_cascading_removal(self):
        # Removing a singleton creates a singleton residual elsewhere.
        moves = [{1}, {1, 2}]
        s = find_set(moves, 6)
        assert_lemma9(moves, s, 6)
        assert s  # Lemma 10: t=2 <= n/2=3

    def test_paper_charging_bound(self):
        rng = random.Random(0)
        for n in (8, 16, 30):
            for trial in range(20):
                t = n // 2
                moves = [
                    set(rng.sample(range(1, n + 1), rng.randint(1, n)))
                    for _ in range(t)
                ]
                audit = audit_charges(moves, n)
                assert audit["removed"] <= 2 * t - 1 if audit["removed"] else True
                assert audit["final_size"] >= n - (2 * t - 1)

    def test_lemma10_nonempty_at_half_n(self):
        rng = random.Random(1)
        for n in (8, 16, 32, 64):
            t = n // 2
            for trial in range(10):
                moves = [
                    set(rng.sample(range(1, n + 1), rng.randint(1, n)))
                    for _ in range(t)
                ]
                s = find_set(moves, n)
                assert s, (n, trial)
                assert_lemma9(moves, s, n)

    def test_lemma9_holds_even_with_many_moves(self):
        # Past n/2 moves S may empty out, but if it doesn't, Lemma 9
        # must still hold.
        rng = random.Random(2)
        n = 12
        moves = [
            set(rng.sample(range(1, n + 1), rng.randint(1, 4))) for _ in range(20)
        ]
        s = find_set(moves, n)
        if s:
            assert_lemma9(moves, s, n)

    def test_all_singletons_worst_case(self):
        n = 10
        moves = [{i} for i in range(1, 6)]  # t = n/2 singletons
        s = find_set(moves, n)
        assert s == frozenset(range(6, 11))
        assert_lemma9(moves, s, n)

    def test_pathological_nested_moves(self):
        n = 12
        moves = [{1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4}, {1, 2, 3, 4, 5}, {6}]
        s = find_set(moves, n)
        assert s
        assert_lemma9(moves, s, n)

    def test_move_outside_universe_rejected(self):
        with pytest.raises(GameError):
            find_set([{99}], 5)

    def test_referee_says_nothing_useful_on_found_set(self):
        # End-to-end Lemma 9 reading: with S = find_set(moves), the
        # referee's answers on those moves are exactly the canonical
        # ones (miss for singletons, nothing otherwise) — never a hit.
        rng = random.Random(3)
        n = 20
        moves = [
            set(rng.sample(range(1, n + 1), rng.randint(1, n // 2)))
            for _ in range(n // 2)
        ]
        s = find_set(moves, n)
        referee = Referee(n, s)
        for m in moves:
            answer = referee.answer(m)
            if len(m) == 1:
                assert answer.kind == "miss"
                assert answer.element == next(iter(m))
            else:
                assert answer.kind == "nothing"


class TestFoilStrategy:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            SingletonSweepStrategy,
            DoublingStrategy,
            BinarySplittingStrategy,
            lambda: RandomStrategy(17),
        ],
        ids=["sweep", "doubling", "binary", "random"],
    )
    @pytest.mark.parametrize("n", [8, 20, 50])
    def test_every_strategy_foiled_at_half_n(self, strategy_factory, n):
        result = foil_strategy(strategy_factory(), n, n // 2)
        assert result.hidden_set
        assert result.survived_moves >= n // 2
        assert result.consistent

    def test_foiled_set_consistent_with_lemma9(self):
        result = foil_strategy(SingletonSweepStrategy(), 30, 15)
        assert_lemma9(result.induced_moves, result.hidden_set, 30)

    def test_max_moves_validation(self):
        with pytest.raises(GameError):
            foil_strategy(SingletonSweepStrategy(), 10, 0)

    def test_proposition_11_quantitative(self):
        # G(n) > n/2: every strategy in the suite needs more than n/2
        # moves against its adversarial set.
        n = 40
        for factory in (SingletonSweepStrategy, DoublingStrategy):
            result = foil_strategy(factory(), n, n // 2)
            assert result.survived_moves >= n // 2
