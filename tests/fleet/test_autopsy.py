"""Campaign autopsy: timeline replay, attribution, cross-checks."""

import json

import pytest

from repro.errors import ExperimentError
from repro.fabric.store import LeaseStore
from repro.fleet.autopsy import autopsy, land_autopsy, render_autopsy_html

FINGERPRINT = "feed" * 16


def scripted_store(tmp_path):
    """A deterministic two-chunk drill: one takeover, one stale commit.

    w0 and w1 each claim a chunk; w1 is killed, its lease expires, w0
    takes chunk 1 over under fence 2 and commits both chunks; w1's
    late commit under fence 1 bounces off the fencing check.
    """
    store = LeaseStore(tmp_path / "fab.db")
    campaign_id = store.create_campaign(
        FINGERPRINT, spec="slow-squares", params={"n": 2},
        items=2, chunksize=1,
    )
    store.log_worker_event(campaign_id, "w0", "worker_start")
    store.log_worker_event(campaign_id, "w1", "worker_start")
    lease0 = store.claim(campaign_id, "w0", ttl=30.0, now=0.0)
    stale = store.claim(campaign_id, "w1", ttl=1.0, now=0.1)
    assert (lease0.index, stale.index) == (0, 1)
    store.log_worker_event(campaign_id, "w1", "fault", idx=1, fence=1,
                           detail="kill")
    taken = store.claim(campaign_id, "w0", ttl=1.0, now=2.0)
    assert taken.index == 1 and taken.fence == 2
    assert store.commit(taken, "w0", payload=json.dumps([1]), now=2.1)
    assert not store.commit(stale, "w1", payload=json.dumps([666]), now=2.2)
    assert store.commit(lease0, "w0", payload=json.dumps([0]), now=2.3)
    store.log_worker_event(campaign_id, "w0", "worker_exit",
                           detail="done, committed=2")
    return store, campaign_id


def write_journal(path, payloads, *, fingerprint=FINGERPRINT):
    with path.open("w", encoding="utf-8") as stream:
        stream.write(json.dumps({"kind": "header", "fingerprint": fingerprint})
                     + "\n")
        for index, payload in sorted(payloads.items()):
            stream.write(json.dumps({"kind": "chunk", "index": index,
                                     "payload": payload}) + "\n")
    return path


class TestReplay:
    def test_clean_drill_passes_with_full_attribution(self, tmp_path):
        store, _ = scripted_store(tmp_path)
        store.close()
        report = autopsy(tmp_path / "fab.db")
        assert report.passed, report.render()
        assert report.violations == []
        assert report.takeovers == 1
        assert report.fence_rejects == 1
        # Every committed chunk is attributable to exactly one fenced
        # holder — the acceptance criterion, read off the report.
        assert report.attribution() == {0: ("w0", 1), 1: ("w0", 2)}
        assert report.workers["w1"]["fence_rejects"] == 1
        assert report.workers["w1"]["faults"] == 1
        assert report.workers["w0"]["exit_detail"] == "done, committed=2"

    def test_render_is_byte_stable(self, tmp_path):
        store, _ = scripted_store(tmp_path)
        store.close()
        first = autopsy(tmp_path / "fab.db")
        second = autopsy(tmp_path / "fab.db")
        assert first.render() == second.render()
        assert (json.dumps(first.to_json(), sort_keys=True, default=repr)
                == json.dumps(second.to_json(), sort_keys=True, default=repr))
        assert render_autopsy_html(first) == render_autopsy_html(second)

    def test_forged_duplicate_commit_is_a_violation(self, tmp_path):
        store, campaign_id = scripted_store(tmp_path)
        # Forge a second commit event for chunk 0: the replay must flag
        # it even though the chunks table itself looks consistent.
        store.log_worker_event(campaign_id, "w1", "commit", idx=0, fence=1)
        store.close()
        report = autopsy(tmp_path / "fab.db")
        assert not report.passed
        assert any("chunk 0" in v for v in report.violations)

    def test_empty_store_raises(self, tmp_path):
        LeaseStore(tmp_path / "fab.db").close()
        with pytest.raises(ExperimentError):
            autopsy(tmp_path / "fab.db")

    def test_campaign_prefix_selects(self, tmp_path):
        store, _ = scripted_store(tmp_path)
        store.close()
        report = autopsy(tmp_path / "fab.db", FINGERPRINT[:8])
        assert report.fingerprint == FINGERPRINT
        with pytest.raises(ExperimentError):
            autopsy(tmp_path / "fab.db", "bogus")


class TestJournalCheck:
    def test_matching_journal_passes(self, tmp_path):
        store, campaign_id = scripted_store(tmp_path)
        payloads = store.completed_payloads(campaign_id)
        store.close()
        journal = write_journal(tmp_path / "fab.journal.jsonl", payloads)
        report = autopsy(tmp_path / "fab.db", journal=journal)
        assert report.journal_check["matched"], report.journal_check
        assert report.passed

    def test_diverged_journal_fails_the_autopsy(self, tmp_path):
        store, campaign_id = scripted_store(tmp_path)
        payloads = store.completed_payloads(campaign_id)
        store.close()
        payloads[1] = json.dumps([999])  # the splice lied
        journal = write_journal(tmp_path / "fab.journal.jsonl", payloads)
        report = autopsy(tmp_path / "fab.db", journal=journal)
        assert not report.journal_check["matched"]
        assert not report.passed
        assert any("chunk 1" in p for p in report.journal_check["problems"])

    def test_foreign_journal_is_flagged(self, tmp_path):
        store, campaign_id = scripted_store(tmp_path)
        payloads = store.completed_payloads(campaign_id)
        store.close()
        journal = write_journal(tmp_path / "other.jsonl", payloads,
                                fingerprint="beef" * 16)
        report = autopsy(tmp_path / "fab.db", journal=journal)
        assert any("belongs to campaign" in p
                   for p in report.journal_check["problems"])


class TestTelemetryCheck:
    def test_disagreeing_metrics_snapshot_is_reported(self, tmp_path):
        from repro.fleet.metrics import MetricsRegistry

        store, _ = scripted_store(tmp_path)
        store.close()
        registry = MetricsRegistry()
        registry.counter("fence_reject_total", worker="w1").inc(5)  # lies
        log = tmp_path / "telemetry.jsonl"
        log.write_text(
            json.dumps({"kind": "metrics", "ts": 1.0,
                        "snapshot": registry.snapshot()}) + "\n",
            encoding="utf-8",
        )
        report = autopsy(tmp_path / "fab.db", telemetry_log=log)
        assert any("fence_reject_total" in p
                   for p in report.telemetry_check["problems"])


class TestLanding:
    def test_land_autopsy_is_idempotent(self, tmp_path):
        from repro.obs import RunStore

        store, _ = scripted_store(tmp_path)
        store.close()
        report = autopsy(tmp_path / "fab.db")
        with RunStore(tmp_path / "obs.db") as obs:
            first = land_autopsy(report, obs)
            second = land_autopsy(report, obs)
            assert first == second
            metrics = obs.metrics_for(first)
        assert metrics["fabric.takeovers"] == 1.0
        assert metrics["fabric.fence_rejects"] == 1.0
        assert metrics["fabric.chunks_committed"] == 2.0
        assert metrics["fabric.violations"] == 0.0


class TestHtml:
    def test_dashboard_is_scriptless_and_complete(self, tmp_path):
        store, _ = scripted_store(tmp_path)
        store.close()
        report = autopsy(tmp_path / "fab.db")
        page = render_autopsy_html(report)
        assert "<script" not in page
        assert "chunk 0" in page and "chunk 1" in page
        assert "PASSED" in page
        assert 'class="bar takeover"' in page
        assert 'class="mark reject"' in page
        assert page.count('class="mark commit"') == 2
