"""End-to-end fleet observability: a real faulted fabric run must yield
one merged, validator-clean Chrome trace with per-worker lanes, a
metrics registry that reconciles with the store's audit log, and a
passing byte-stable autopsy — the PR's acceptance criteria, executed.
"""

import json

import pytest

from repro.fabric.coordinator import FabricConfig, run_fabric
from repro.fabric.faultplan import FaultPlan
from repro.fleet.autopsy import autopsy
from repro.fleet.metrics import snapshot_totals
from repro.monitor.chrome_trace import (
    chrome_trace,
    merge_records,
    validate_chrome_trace,
)
from repro.monitor.tail import read_log_records
from repro.telemetry import Telemetry, activate


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    """One seeded kill drill, shared by every assertion below."""
    tmp_path = tmp_path_factory.mktemp("fleet_drill")
    config = FabricConfig(
        spec="slow-squares",
        params={"n": 8, "delay": 0.05},
        store=tmp_path / "fab.db",
        workers=2,
        lease_ttl=1.0,
        fault_plan=FaultPlan.parse("kill@w1#0"),
        journal=tmp_path / "fab.journal.jsonl",
        timeout=120.0,
        worker_telemetry=True,
        prom=tmp_path / "fab.prom",
    )
    log = tmp_path / "fab.telemetry.jsonl"
    recorder = Telemetry.to_path(log)
    recorder.write_manifest(command="fabric", seed=0,
                            config={"spec": "slow-squares"})
    with recorder, activate(recorder):
        result = run_fabric(config)
    return tmp_path, config, result, log


class TestDrillOutcome:
    def test_kill_forced_a_takeover(self, drill):
        _, _, result, _ = drill
        assert result.takeovers >= 1
        assert -9 in result.worker_exits.values()
        assert [r * r for r in range(8)] == list(result.results)

    def test_trace_id_assigned_and_deterministic(self, drill):
        _, _, result, _ = drill
        from repro.fleet.tracectx import TraceContext

        assert result.trace_id == TraceContext.root(result.fingerprint).trace_id


class TestMergedTrace:
    def test_worker_logs_exist_and_share_the_trace(self, drill):
        _, _, result, log = drill
        assert set(result.worker_logs) == {"w0", "w1"}
        coordinator_records = read_log_records(log)
        traced = [r for r in coordinator_records if "trace" in r]
        assert traced and all(r["trace"] == result.trace_id for r in traced)
        for worker, worker_log in result.worker_logs.items():
            records = read_log_records(worker_log)
            stamped = [r for r in records if "trace" in r]
            # The context crossed the process boundary via the env.
            assert stamped, f"{worker} wrote no trace-stamped records"
            assert all(r["trace"] == result.trace_id for r in stamped)

    def test_merged_chrome_trace_validates_with_worker_lanes(self, drill):
        _, _, result, log = drill
        streams = {"": read_log_records(log)}
        for worker, worker_log in result.worker_logs.items():
            streams[worker] = read_log_records(worker_log)
        trace = chrome_trace(merge_records(streams))
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        # One process lane per worker plus the coordinator's.
        lanes = {e["pid"] for e in events if "pid" in e}
        assert len(lanes) >= 3
        names = {e.get("name") for e in events}
        assert "lease:takeover" in names  # the kill left its instant behind


class TestMetricsReconcile:
    def test_prometheus_file_written(self, drill):
        tmp_path, _, result, _ = drill
        assert result.prom is not None
        text = result.prom.read_text(encoding="utf-8")
        assert "repro_takeover_total" in text
        assert "repro_commit_total" in text

    def test_final_snapshot_matches_the_store_audit(self, drill):
        tmp_path, _, result, log = drill
        from repro.fabric.store import LeaseStore

        snapshots = [r for r in read_log_records(log)
                     if r.get("kind") == "metrics"]
        assert snapshots
        totals = snapshot_totals(snapshots[-1]["snapshot"])
        with LeaseStore(tmp_path / "fab.db") as store:
            row = store.campaign(result.fingerprint)
            events = store.events(int(row["id"]))
        by_kind = {}
        for event in events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        assert totals["takeover_total"] == by_kind.get("takeover", 0)
        assert totals["commit_total"] == by_kind.get("commit", 0)
        assert totals["chunks_committed"] == result.chunks


class TestAutopsyAcceptance:
    def test_autopsy_passes_and_attributes_every_chunk(self, drill):
        tmp_path, _, result, log = drill
        report = autopsy(tmp_path / "fab.db",
                         journal=tmp_path / "fab.journal.jsonl",
                         telemetry_log=log)
        assert report.passed, report.render()
        attribution = report.attribution()
        assert sorted(attribution) == list(range(result.chunks))
        for worker, fence in attribution.values():
            assert worker in ("w0", "w1")
            assert fence >= 1
        assert report.journal_check["matched"]
        assert report.telemetry_check["problems"] == []

    def test_autopsy_is_byte_stable_across_invocations(self, drill):
        tmp_path, _, _, log = drill
        kwargs = dict(journal=tmp_path / "fab.journal.jsonl",
                      telemetry_log=log)
        first = autopsy(tmp_path / "fab.db", **kwargs)
        second = autopsy(tmp_path / "fab.db", **kwargs)
        assert first.render() == second.render()
        assert (json.dumps(first.to_json(), sort_keys=True, default=repr)
                == json.dumps(second.to_json(), sort_keys=True, default=repr))
