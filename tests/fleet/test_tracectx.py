"""Distributed trace context: derivation, propagation, stamping."""

from repro.fleet.tracectx import ENV_TRACE_ID, ENV_TRACE_PARENT, TraceContext
from repro.telemetry import Telemetry


class TestDerivation:
    def test_ids_are_deterministic(self):
        # Load-bearing: a resumed campaign must land in the same trace
        # as its first attempt, and replayed drills must be byte-stable.
        a = TraceContext.root("fingerprint-abc")
        b = TraceContext.root("fingerprint-abc")
        assert a == b
        assert a.trace_id == b.trace_id
        assert len(a.trace_id) == 16

    def test_different_campaigns_get_different_traces(self):
        assert (
            TraceContext.root("campaign-1").trace_id
            != TraceContext.root("campaign-2").trace_id
        )

    def test_child_shares_trace_and_chains_parentage(self):
        root = TraceContext.root("camp")
        worker = root.child("worker w0")
        lease = worker.child("chunk 3")
        assert worker.trace_id == root.trace_id == lease.trace_id
        assert worker.parent_id == root.span_id
        assert lease.parent_id == worker.span_id
        assert len({root.span_id, worker.span_id, lease.span_id}) == 3

    def test_no_rng_consumed(self):
        # Seed purity: deriving ids must not draw from any RNG stream.
        import random

        state = random.getstate()
        TraceContext.root("camp").child("worker w0").child("chunk 0")
        assert random.getstate() == state


class TestEnvPropagation:
    def test_round_trip_through_env(self):
        root = TraceContext.root("camp")
        env: dict[str, str] = {}
        root.to_env(env)
        assert env == {
            ENV_TRACE_ID: root.trace_id,
            ENV_TRACE_PARENT: root.span_id,
        }
        rebuilt = TraceContext.from_env("worker w0", env)
        assert rebuilt is not None
        assert rebuilt.trace_id == root.trace_id
        assert rebuilt.parent_id == root.span_id
        # The rebuilt span is the same one the coordinator would derive.
        assert rebuilt.span_id == root.child("worker w0").span_id

    def test_from_env_without_trace_is_none(self):
        # A stand-alone worker launch: stamping stays strictly off.
        assert TraceContext.from_env("worker w0", {}) is None
        assert TraceContext.from_env("worker w0", {ENV_TRACE_ID: ""}) is None

    def test_to_env_returns_fresh_dict_when_none_given(self):
        env = TraceContext.root("camp").to_env()
        assert set(env) == {ENV_TRACE_ID, ENV_TRACE_PARENT}


class TestStamping:
    def test_stamp_adds_identity(self):
        context = TraceContext.root("camp").child("worker w0")
        record = {"kind": "run_end"}
        context.stamp(record)
        assert record["trace"] == context.trace_id
        assert record["span"] == context.span_id
        assert record["parent"] == context.parent_id

    def test_root_span_has_no_parent_field(self):
        record = {"kind": "fabric_begin"}
        TraceContext.root("camp").stamp(record)
        assert "parent" not in record

    def test_prestamped_records_keep_their_span(self):
        # Worker records shipped back to the coordinator must stay
        # attributable to the worker's span, not the coordinator's.
        coordinator = TraceContext.root("camp")
        worker = coordinator.child("worker w0")
        record = {"kind": "run_end"}
        worker.stamp(record)
        coordinator.stamp(record)
        assert record["span"] == worker.span_id
        assert record["parent"] == coordinator.span_id

    def test_recorder_stamps_every_record_while_installed(self):
        context = TraceContext.root("camp")
        with Telemetry.buffered() as tel:
            tel.emit("event", name="before")
            previous = tel.set_trace(context)
            assert previous is None
            tel.emit("event", name="during")
            tel.write_record({"kind": "run_end", "ts": 1.0})
            tel.set_trace(None)
            tel.emit("event", name="after")
            records = tel.drain()
        by_name = {r.get("name"): r for r in records if r["kind"] == "event"}
        assert "trace" not in by_name["before"]
        assert by_name["during"]["trace"] == context.trace_id
        assert "trace" not in by_name["after"]
        shipped = [r for r in records if r["kind"] == "run_end"]
        assert shipped[0]["trace"] == context.trace_id
