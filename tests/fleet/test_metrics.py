"""The fleet metrics registry: instruments, exposition, ambient no-op."""

import threading

import pytest

from repro.fleet.metrics import (
    MetricsRegistry,
    sanitize_label_name,
    sanitize_metric_name,
    activate_metrics,
    counter,
    gauge,
    get_registry,
    observe,
    registry_from_snapshot,
    set_registry,
    snapshot_totals,
)
from repro.telemetry import Telemetry


class TestInstruments:
    def test_counter_accumulates_and_refuses_decrease(self):
        registry = MetricsRegistry()
        registry.counter("commits").inc()
        registry.counter("commits").inc(2.0)
        assert registry.counter("commits").sample() == 3.0
        with pytest.raises(ValueError):
            registry.counter("commits").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        g = registry.gauge("leases_held")
        g.set(2.0)
        g.dec()
        g.inc(0.5)
        assert g.sample() == 1.5

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("chunk_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            h.observe(value)
        assert h.cumulative() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
        assert h.count == 4
        assert h.total == pytest.approx(6.05)

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("commit_total", worker="w0").inc()
        registry.counter("commit_total", worker="w1").inc(2)
        assert registry.counter("commit_total", worker="w0").sample() == 1.0
        assert registry.totals()["commit_total"] == 3.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(500):
                registry.counter("hits", worker="shared").inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.totals()["hits"] == 2000.0


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("fence_reject_total", worker="w2").inc()
        registry.counter("claim_total", worker="w0").inc(3)
        registry.gauge("workers_live").set(2)
        registry.histogram("chunk_seconds", buckets=(0.5, 1.0), worker="w0").observe(0.2)
        return registry

    def test_prometheus_text_is_deterministic(self):
        a, b = self._populated(), self._populated()
        text = a.prometheus_text()
        assert text == b.prometheus_text()
        assert "# TYPE repro_claim_total counter" in text
        assert 'repro_fence_reject_total{worker="w2"} 1' in text
        assert 'repro_chunk_seconds_bucket{worker="w0",le="+Inf"} 1' in text
        assert 'repro_chunk_seconds_count{worker="w0"} 1' in text

    def test_snapshot_round_trips_through_registry_from_snapshot(self):
        original = self._populated()
        rebuilt = registry_from_snapshot(original.snapshot())
        assert rebuilt.prometheus_text() == original.prometheus_text()
        assert rebuilt.totals() == original.totals()

    def test_from_snapshot_into_overwrites_not_accumulates(self):
        # `fleet metrics` folds successive snapshots of the *same*
        # process into one registry; later snapshots must replace the
        # earlier state of a series, never double-count it.
        registry = MetricsRegistry()
        early = MetricsRegistry()
        early.counter("commit_total", worker="w0").inc(2)
        late = MetricsRegistry()
        late.counter("commit_total", worker="w0").inc(5)
        registry_from_snapshot(early.snapshot(), into=registry)
        registry_from_snapshot(late.snapshot(), into=registry)
        assert registry.totals()["commit_total"] == 5.0

    def test_snapshot_totals_matches_registry_totals(self):
        registry = self._populated()
        assert snapshot_totals(registry.snapshot()) == registry.totals()

    def test_emit_rides_the_telemetry_stream(self):
        registry = self._populated()
        with Telemetry.buffered() as tel:
            registry.emit(tel, worker="w0")
            [record] = tel.drain()
        assert record["kind"] == "metrics"
        assert record["worker"] == "w0"
        assert snapshot_totals(record["snapshot"]) == registry.totals()

    def test_write_prometheus(self, tmp_path):
        registry = self._populated()
        target = tmp_path / "out" / "metrics.prom"
        text = registry.write_prometheus(target)
        assert target.read_text(encoding="utf-8") == text == registry.prometheus_text()


class TestAmbient:
    def test_helpers_noop_without_registry(self):
        assert get_registry() is None
        # Must not raise, allocate a registry, or record anything.
        counter("commit_total", worker="w0")
        gauge("workers_live", 3.0)
        observe("chunk_seconds", 0.5)
        assert get_registry() is None

    def test_activate_metrics_scopes_the_registry(self):
        registry = MetricsRegistry()
        with activate_metrics(registry) as active:
            assert active is registry is get_registry()
            counter("commit_total", worker="w0")
            gauge("leases_held", 1.0, worker="w0")
            observe("chunk_seconds", 0.2, worker="w0")
        assert get_registry() is None
        assert registry.totals() == {
            "commit_total": 1.0,
            "leases_held": 1.0,
            "chunk_seconds": 1.0,
        }

    def test_set_registry_returns_previous(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        assert set_registry(first) is None
        try:
            assert set_registry(second) is first
        finally:
            set_registry(None)


class TestHistogramEdgeCases:
    def test_empty_histogram_exposes_zero_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("chunk_seconds", buckets=(0.1, 1.0))
        text = registry.prometheus_text()
        assert 'repro_chunk_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_chunk_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_chunk_seconds_sum 0" in text
        assert "repro_chunk_seconds_count 0" in text

    def test_empty_histogram_quantile_is_none(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        assert h.quantile(0.5) is None
        assert h.quantile(0.0) is None
        assert h.quantile(1.0) is None

    def test_quantile_rejects_out_of_range(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_single_observation_answers_every_quantile(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        for q in (0.0, 0.5, 0.9, 1.0):
            value = h.quantile(q)
            assert value is not None
            assert 0.0 <= value <= 1.0  # bounded by its own bucket

    def test_quantile_interpolates_within_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(10.0, 20.0))
        for value in (5.0, 12.0, 14.0, 18.0):
            h.observe(value)
        # rank 2 of 4 lands in the (10, 20] bucket: 10 + 10 * (2-1)/3
        assert h.quantile(0.5) == pytest.approx(10.0 + 10.0 / 3.0)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0


class TestLabelEscaping:
    def test_quotes_backslashes_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("oddities", path='C:\\tmp\\"x"\nend').inc()
        text = registry.prometheus_text()
        assert 'path="C:\\\\tmp\\\\\\"x\\"\\nend"' in text
        # The exposition still parses line-by-line: no raw newline leaked
        # into a series line.
        for line in text.splitlines():
            assert line.startswith(("#", "repro_"))

    def test_plain_values_untouched(self):
        registry = MetricsRegistry()
        registry.counter("commit_total", worker="w0").inc()
        assert 'worker="w0"' in registry.prometheus_text()


class TestPrometheusHygiene:
    """Exposition edge cases: empty histograms and charset sanitization."""

    def test_empty_histogram_renders_inf_bucket_and_zero_count(self):
        # A registered-but-never-observed histogram must still be a
        # valid exposition: the +Inf bucket, _sum and _count all render
        # (as zeros), not a truncated metric family.
        registry = MetricsRegistry()
        registry.histogram("idle_seconds", buckets=(0.5, 1.0))
        text = registry.prometheus_text()
        assert 'repro_idle_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_idle_seconds_sum 0" in text
        assert "repro_idle_seconds_count 0" in text

    def test_empty_bounds_histogram_round_trips(self):
        # An explicit empty bucket list (just the implicit +Inf) must
        # survive snapshot -> registry_from_snapshot without being
        # silently replaced by DEFAULT_BUCKETS.
        original = MetricsRegistry()
        original.histogram("lat", buckets=()).observe(3.0)
        rebuilt = registry_from_snapshot(original.snapshot())
        assert rebuilt.histogram("lat").bounds == ()
        assert rebuilt.prometheus_text() == original.prometheus_text()

    def test_metric_names_sanitized_at_registration(self):
        registry = MetricsRegistry()
        registry.counter("engine.slots/sec").inc()
        registry.counter("9lives").inc()
        text = registry.prometheus_text()
        assert "repro_engine_slots_sec 1" in text
        assert "repro__9lives 1" in text
        # Both spellings resolve to the same instrument.
        assert registry.counter("engine.slots/sec").sample() == 1.0
        assert registry.counter("engine_slots_sec").sample() == 1.0

    def test_label_names_sanitized_at_registration(self):
        registry = MetricsRegistry()
        registry.counter("hits", **{"worker-id": "w0"}).inc()
        assert 'repro_hits{worker_id="w0"} 1' in registry.prometheus_text()

    def test_sanitizers_pass_valid_names_through(self):
        assert sanitize_metric_name("chunk_seconds:rate") == "chunk_seconds:rate"
        assert sanitize_label_name("worker") == "worker"
        # Colons are metric-only; label names reject them.
        assert sanitize_label_name("a:b") == "a_b"
