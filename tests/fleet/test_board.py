"""The fleet board: store-row translation, worker lanes, merged follow."""

import json

from repro.fabric.store import LeaseStore
from repro.fleet.board import FleetBoard, follow_fleet, store_event_record


class TestStoreEventRecord:
    def test_lease_transition_becomes_lease_record(self):
        record = store_event_record(
            {
                "id": 7,
                "ts": 12.5,
                "worker": "w1",
                "kind": "takeover",
                "idx": 3,
                "fence": 2,
                "detail": "expired lease of w0",
            }
        )
        assert record == {
            "kind": "lease",
            "event": "takeover",
            "ts": 12.5,
            "store_id": 7,
            "worker": "w1",
            "index": 3,
            "fence": 2,
            "detail": "expired lease of w0",
        }

    def test_lifecycle_event_becomes_worker_record(self):
        record = store_event_record(
            {"id": 1, "ts": 1.0, "worker": "w0", "kind": "worker_start",
             "idx": None, "fence": None, "detail": None}
        )
        assert record["kind"] == "worker"
        assert record["event"] == "worker_start"
        assert record["worker"] == "w0"
        assert "index" not in record

    def test_schema_validates_translated_records(self):
        from repro.telemetry.schema import validate_record

        lease = store_event_record(
            {"id": 1, "ts": 1.0, "worker": "w0", "kind": "commit",
             "idx": 0, "fence": 1, "detail": None}
        )
        worker = store_event_record(
            {"id": 2, "ts": 2.0, "worker": "w0", "kind": "fault",
             "idx": 0, "fence": 1, "detail": "kill"}
        )
        assert validate_record(lease) == []
        assert validate_record(worker) == []


def _feed(board, records):
    for record in records:
        board.update(record)


class TestFleetBoard:
    def test_lanes_track_worker_health(self):
        board = FleetBoard()
        _feed(board, [
            {"kind": "fabric_begin", "ts": 0.0, "chunks": 2, "workers": 2},
            {"kind": "worker", "ts": 0.1, "event": "worker_start", "worker": "w0"},
            {"kind": "lease", "ts": 0.2, "event": "claim", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "lease", "ts": 0.3, "event": "claim", "worker": "w1",
             "index": 1, "fence": 1},
            {"kind": "worker", "ts": 0.4, "event": "fault", "worker": "w1",
             "detail": "kill"},
            {"kind": "lease", "ts": 0.5, "event": "commit", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "lease", "ts": 0.6, "event": "takeover", "worker": "w0",
             "index": 1, "fence": 2},
            {"kind": "lease", "ts": 0.7, "event": "fence_reject", "worker": "w1",
             "index": 1, "fence": 1},
            {"kind": "lease", "ts": 0.8, "event": "commit", "worker": "w0",
             "index": 1, "fence": 2},
            {"kind": "worker", "ts": 0.9, "event": "worker_exit", "worker": "w0",
             "detail": "done, committed=2"},
            {"kind": "fabric_end", "ts": 1.0, "chunks": 2},
        ])
        fleet = board.snapshot()["fleet"]
        assert fleet["chunks_total"] == 2
        assert fleet["chunks_committed"] == 2
        assert fleet["takeovers"] == 1
        assert fleet["fence_rejects"] == 1
        assert fleet["fabric_done"] is True
        w0, w1 = fleet["workers"]["w0"], fleet["workers"]["w1"]
        assert w0["state"] == "exited"
        assert w0["claims"] == 2  # the plain claim + the takeover grant
        assert w0["commits"] == 2
        assert w0["takeovers"] == 1
        assert w0["exit_detail"] == "done, committed=2"
        assert w1["state"] == "killed"
        assert w1["fence_rejects"] == 1
        assert w1["last_fault"] == "kill"

    def test_committed_chunks_dedupe_by_index(self):
        board = FleetBoard()
        _feed(board, [
            {"kind": "lease", "ts": 0.1, "event": "commit", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "lease", "ts": 0.2, "event": "commit", "worker": "w0",
             "index": 0, "fence": 1},
        ])
        assert board.snapshot()["fleet"]["chunks_committed"] == 1

    def test_lines_and_status_line_carry_fleet_state(self):
        board = FleetBoard()
        _feed(board, [
            {"kind": "fabric_begin", "ts": 0.0, "chunks": 4, "workers": 1},
            {"kind": "lease", "ts": 0.1, "event": "claim", "worker": "w0",
             "index": 0, "fence": 1},
            {"kind": "lease", "ts": 0.2, "event": "fence_reject", "worker": "w0",
             "index": 0, "fence": 1},
        ])
        body = "\n".join(board.lines())
        assert "fleet: chunks 0/4" in body
        assert "REJECTS 1" in body
        status = board.status_line()
        assert "workers 1/1" in status
        assert "rejects 1" in status

    def test_plain_status_board_records_flow_through(self):
        # The merged stream also carries ordinary run/slot records; the
        # base board behaviour must be untouched by the fleet overlay.
        board = FleetBoard()
        board.update({"kind": "run_end", "ts": 1.0, "slots": 10,
                      "transmissions": 4, "collisions": 1, "delivered": True})
        assert board.snapshot()["fleet"]["workers"] == {}


class TestFollowFleet:
    def _scripted_store(self, tmp_path):
        store = LeaseStore(tmp_path / "fab.db")
        campaign_id = store.create_campaign(
            "cafe" * 16, spec="slow-squares", params={}, items=2, chunksize=1
        )
        store.log_worker_event(campaign_id, "w0", "worker_start")
        for index in range(2):
            lease = store.claim(campaign_id, "w0", ttl=30.0)
            assert lease is not None and lease.index == index
            assert store.commit(lease, "w0", payload=json.dumps([index]))
        store.log_worker_event(campaign_id, "w0", "worker_exit",
                               detail="done, committed=2")
        return store

    def test_merges_store_events_and_worker_logs(self, tmp_path):
        store = self._scripted_store(tmp_path)
        store.close()
        log = tmp_path / "w0.telemetry.jsonl"
        log.write_text(
            json.dumps({"kind": "run_end", "ts": 0.0, "slots": 5,
                        "transmissions": 1, "collisions": 0,
                        "delivered": True}) + "\n",
            encoding="utf-8",
        )
        records = list(
            follow_fleet(tmp_path / "fab.db", "cafe" * 16, logs=[log],
                         poll_interval=0.01, idle_timeout=1.0)
        )
        kinds = sorted({r["kind"] for r in records})
        assert kinds == ["lease", "run_end", "worker"]
        # until_done fired: the campaign is fully committed, so the
        # follow ended without waiting out the idle timeout.
        lease_events = [r["event"] for r in records if r["kind"] == "lease"]
        assert lease_events.count("claim") == 2
        assert lease_events.count("commit") == 2

    def test_board_over_followed_stream(self, tmp_path):
        store = self._scripted_store(tmp_path)
        store.close()
        board = FleetBoard()
        for record in follow_fleet(tmp_path / "fab.db", "cafe" * 16,
                                   poll_interval=0.01, idle_timeout=1.0):
            board.update(record)
        fleet = board.snapshot()["fleet"]
        assert fleet["chunks_committed"] == 2
        assert fleet["workers"]["w0"]["state"] == "exited"

    def test_missing_store_times_out_idle(self, tmp_path):
        records = list(
            follow_fleet(tmp_path / "nope.db", "cafe" * 16,
                         poll_interval=0.01, idle_timeout=0.05)
        )
        assert records == []
