"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_node_not_found_is_key_error():
    err = errors.NodeNotFound(7)
    assert isinstance(err, KeyError)
    assert "7" in str(err)
    assert err.node == 7


def test_edge_not_found_message_and_payload():
    err = errors.EdgeNotFound(1, 2)
    assert err.edge == (1, 2)
    assert "(1, 2)" in str(err)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.SimulationError("boom")
    with pytest.raises(errors.ReproError):
        raise errors.GameError("boom")


def test_graph_errors_are_graph_error_subclasses():
    assert issubclass(errors.NodeNotFound, errors.GraphError)
    assert issubclass(errors.EdgeNotFound, errors.GraphError)
