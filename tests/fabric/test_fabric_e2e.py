"""End-to-end fabric acceptance tests: real worker subprocesses, real
``kill -9``, and the byte-identity + fencing-soundness verdicts.

These encode the PR's acceptance criterion directly: under a fault
plan that kills/stalls >=30% of the workers and forces a stale-commit
attempt, the campaign completes, no chunk is ever committed under an
expired fencing token, and the spliced results are byte-identical to
the serial reference run.
"""

import pickle

import pytest

from repro.fabric.coordinator import FabricConfig, run_fabric
from repro.fabric.faultplan import FaultPlan
from repro.fabric.specs import resolve_spec
from repro.fabric.verify import verify_fabric
from repro.parallel import resilient_map


def _chaos_config(tmp_path, *, seed=1, workers=3, journal=None):
    plan = FaultPlan.random(
        seed,
        [f"w{i}" for i in range(workers)],
        max_ordinal=1,
        stall_duration=2.5,
        partition_duration=2.5,
    )
    return FabricConfig(
        spec="slow-squares",
        params={"n": 18, "delay": 0.05},
        store=tmp_path / "fabric.db",
        workers=workers,
        lease_ttl=1.0,
        fault_plan=plan,
        journal=journal,
        timeout=120.0,
    )


class TestAcceptance:
    def test_faulted_fabric_matches_serial_byte_for_byte(self, tmp_path):
        config = _chaos_config(tmp_path)
        # The seeded default plan faults all three workers (kill, stall,
        # stale) — well past the 30% bar — with one stale-commit drill.
        assert len(config.fault_plan.faulted_workers()) == 3
        assert config.fault_plan.count("stale") == 1

        report = verify_fabric(config)
        assert report.byte_identical, report.render()
        assert report.fencing_errors == [], report.render()
        assert report.visibility_errors == [], report.render()
        assert report.passed

        # The faults demonstrably happened.
        assert report.result.takeovers >= 1
        assert report.result.fence_rejects >= 1
        exit_codes = set(report.result.worker_exits.values())
        assert -9 in exit_codes  # someone really was SIGKILLed

    def test_fabric_journal_is_byte_identical_to_pool_journal(self, tmp_path):
        config = _chaos_config(tmp_path, journal=tmp_path / "fabric.jsonl")
        result = run_fabric(config)

        spec = resolve_spec(config.spec, config.params)
        reference = resilient_map(
            spec.fn,
            spec.items,
            jobs=1,
            chunksize=result.chunksize,
            journal=str(tmp_path / "pool.jsonl"),
        )
        assert pickle.dumps(result.results) == pickle.dumps(reference)
        fabric_bytes = (tmp_path / "fabric.jsonl").read_bytes()
        pool_bytes = (tmp_path / "pool.jsonl").read_bytes()
        assert fabric_bytes == pool_bytes

        # And the fabric-written journal resumes under resilient_map.
        resumed = resilient_map(
            spec.fn, spec.items, jobs=1,
            journal=str(tmp_path / "fabric.jsonl"), resume=True,
        )
        assert resumed == reference


class TestFallback:
    def test_zero_workers_runs_in_process(self, tmp_path):
        config = FabricConfig(
            spec="squares", params={"n": 20},
            store=tmp_path / "f.db", workers=0, timeout=60.0,
        )
        result = run_fabric(config)
        assert result.results == [x * x for x in range(20)]
        assert "coordinator" in result.workers

    def test_all_workers_killed_coordinator_finishes(self, tmp_path):
        # Every subprocess is killed on its first claim; the campaign
        # must still complete via the coordinator's in-process fallback.
        config = FabricConfig(
            spec="squares", params={"n": 12},
            store=tmp_path / "f.db", workers=2,
            lease_ttl=0.5,
            fault_plan=FaultPlan.parse("kill@w0#0,kill@w1#0"),
            timeout=120.0,
        )
        result = run_fabric(config)
        assert result.results == [x * x for x in range(12)]
        assert set(result.worker_exits.values()) == {-9}


class TestGuards:
    def test_unknown_fault_target_rejected_up_front(self, tmp_path):
        from repro.errors import ExperimentError

        config = FabricConfig(
            spec="squares", params={"n": 4},
            store=tmp_path / "f.db", workers=1,
            fault_plan=FaultPlan.parse("kill@w7#0"),
        )
        with pytest.raises(ExperimentError, match="unknown worker"):
            run_fabric(config)
