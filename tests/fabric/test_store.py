"""Tests for the lease store (:mod:`repro.fabric.store`): grants,
takeovers, heartbeats, and above all the fencing-token commit rule."""

import threading

import pytest

from repro.errors import ExperimentError
from repro.fabric.store import LeaseStore


def _campaign(store, *, items=12, chunksize=3, fingerprint="f" * 64):
    return store.create_campaign(
        fingerprint, spec="squares", params={"n": items}, items=items,
        chunksize=chunksize,
    )


class TestCampaignRegistration:
    def test_create_seeds_chunk_rows(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=10, chunksize=3)
            assert store.counts(cid) == {"pending": 4}
            assert not store.all_done(cid)

    def test_create_is_idempotent_resume(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store)
            lease = store.claim(cid, "w0", ttl=60)
            store.commit(lease, "w0", "payload0")
            assert _campaign(store) == cid
            # The done chunk survived the re-registration.
            assert store.counts(cid)["done"] == 1

    def test_geometry_mismatch_refuses_resume(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            _campaign(store, items=12, chunksize=3)
            with pytest.raises(ExperimentError, match="different geometry"):
                _campaign(store, items=12, chunksize=4)

    def test_wal_mode_and_busy_timeout(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            (mode,) = store.conn.execute("PRAGMA journal_mode").fetchone().values()
            assert mode == "wal"
            (timeout,) = store.conn.execute("PRAGMA busy_timeout").fetchone().values()
            assert timeout >= 1000


class TestLeases:
    def test_claim_grants_lowest_chunk_with_fence_1(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store)
            lease = store.claim(cid, "w0", ttl=60)
            assert (lease.index, lease.fence) == (0, 1)
            assert store.claim(cid, "w1", ttl=60).index == 1

    def test_live_leases_are_not_reclaimable(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)  # one chunk
            assert store.claim(cid, "w0", ttl=60) is not None
            assert store.claim(cid, "w1", ttl=60) is None

    def test_expired_lease_is_taken_over_with_bumped_fence(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            stale = store.claim(cid, "w0", ttl=60, now=1000.0)
            fresh = store.claim(cid, "w1", ttl=60, now=2000.0)  # ttl expired
            assert fresh.index == stale.index
            assert fresh.fence == stale.fence + 1
            kinds = [e["kind"] for e in store.events(cid)]
            assert kinds == ["claim", "takeover"]

    def test_heartbeat_extends_live_lease(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            lease = store.claim(cid, "w0", ttl=10, now=1000.0)
            assert store.heartbeat(lease, "w0", ttl=10, now=1005.0)
            # Still held at what would have been past the original expiry.
            assert store.claim(cid, "w1", ttl=10, now=1012.0) is None

    def test_heartbeat_returns_false_after_takeover(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            stale = store.claim(cid, "w0", ttl=10, now=1000.0)
            store.claim(cid, "w1", ttl=10, now=2000.0)
            assert not store.heartbeat(stale, "w0", ttl=10, now=2001.0)


class TestFencing:
    def test_commit_under_current_fence_lands(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            lease = store.claim(cid, "w0", ttl=60)
            assert store.commit(lease, "w0", "payload")
            assert store.all_done(cid)
            assert store.completed_payloads(cid) == {0: "payload"}

    def test_superseded_fence_commit_is_rejected(self, tmp_path):
        """The acceptance criterion: no chunk is ever committed under
        an expired fencing token."""
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            stale = store.claim(cid, "w0", ttl=10, now=1000.0)
            fresh = store.claim(cid, "w1", ttl=10, now=2000.0)
            assert not store.commit(stale, "w0", "STALE DATA")
            assert store.commit(fresh, "w1", "good data")
            assert store.completed_payloads(cid) == {0: "good data"}
            kinds = [e["kind"] for e in store.events(cid)]
            assert kinds == ["claim", "takeover", "fence_reject", "commit"]
            reject = store.events(cid)[2]
            assert reject["worker"] == "w0"
            assert "stale fence" in reject["detail"]

    def test_stale_commit_after_good_commit_is_rejected(self, tmp_path):
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            stale = store.claim(cid, "w0", ttl=10, now=1000.0)
            fresh = store.claim(cid, "w1", ttl=10, now=2000.0)
            assert store.commit(fresh, "w1", "good data")
            assert not store.commit(stale, "w0", "STALE DATA")
            assert store.completed_payloads(cid) == {0: "good data"}

    def test_expired_but_never_superseded_commit_lands(self, tmp_path):
        # Deterministic results make this safe, and it avoids wasting
        # the work: the fence is still current, only the clock moved.
        with LeaseStore(tmp_path / "l.db") as store:
            cid = _campaign(store, items=3, chunksize=3)
            lease = store.claim(cid, "w0", ttl=10, now=1000.0)
            assert store.commit(lease, "w0", "late but unique", now=5000.0)


class TestConcurrency:
    def test_parallel_claims_never_double_grant(self, tmp_path):
        """Many threads, each with its own connection, racing claim():
        every grant must be a distinct (chunk, fence) pair."""
        path = tmp_path / "l.db"
        with LeaseStore(path) as store:
            cid = _campaign(store, items=40, chunksize=2)  # 20 chunks
        grants = []
        lock = threading.Lock()

        def claimer(worker_id):
            with LeaseStore(path) as mine:
                while True:
                    lease = mine.claim(cid, worker_id, ttl=300)
                    if lease is None:
                        return
                    with lock:
                        grants.append((lease.index, lease.fence))

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(index for index, _ in grants) == list(range(20))
        assert len(set(grants)) == 20
