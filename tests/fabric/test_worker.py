"""In-process tests of the worker loop (:mod:`repro.fabric.worker`).

Subprocess orchestration is covered by the e2e suite; here the loop
runs in threads against a shared store file, which exercises claim/
heartbeat/commit and the fault hooks without process overhead.
"""

import threading

from repro.fabric.splice import decode_chunk
from repro.fabric.store import LeaseStore
from repro.fabric.worker import WorkerConfig, run_worker
from repro.fabric.faultplan import FaultPlan
from repro.fabric.splice import campaign_fingerprint
from repro.fabric.specs import resolve_spec


def _register(store_path, *, n=12, chunksize=3):
    spec = resolve_spec("squares", {"n": n})
    fingerprint = campaign_fingerprint(spec.fn, spec.items)
    with LeaseStore(store_path) as store:
        cid = store.create_campaign(
            fingerprint, spec="squares", params={"n": n}, items=n,
            chunksize=chunksize,
        )
    return fingerprint, cid


def _results(store_path, cid):
    with LeaseStore(store_path) as store:
        payloads = store.completed_payloads(cid)
    flat = []
    for index in sorted(payloads):
        flat.extend(decode_chunk(payloads[index]))
    return flat


def test_solo_worker_completes_campaign(tmp_path):
    path = tmp_path / "l.db"
    fingerprint, cid = _register(path, n=12, chunksize=3)
    code = run_worker(WorkerConfig(
        store=path, campaign=fingerprint, worker_id="w0",
        poll_interval=0.01, install_signal_handler=False,
    ))
    assert code == 0
    assert _results(path, cid) == [x * x for x in range(12)]
    with LeaseStore(path) as store:
        kinds = [e["kind"] for e in store.events(cid)]
    assert kinds.count("commit") == 4
    assert "worker_start" in kinds and "worker_exit" in kinds


def test_missing_campaign_exits_nonzero(tmp_path):
    code = run_worker(WorkerConfig(
        store=tmp_path / "l.db", campaign="0" * 64, worker_id="w0",
        campaign_wait=0.1, poll_interval=0.01, install_signal_handler=False,
    ))
    assert code == 2


def test_stall_without_takeover_still_commits(tmp_path):
    # A stall shorter than the lease TTL is harmless: the heartbeat
    # pause never lets the lease lapse far enough for anyone to act on.
    path = tmp_path / "l.db"
    fingerprint, cid = _register(path, n=6, chunksize=3)
    code = run_worker(WorkerConfig(
        store=path, campaign=fingerprint, worker_id="w0",
        lease_ttl=30.0, poll_interval=0.01, install_signal_handler=False,
        fault_plan=FaultPlan.parse("stall@w0#0=0.2"),
    ))
    assert code == 0
    assert _results(path, cid) == [x * x for x in range(6)]
    with LeaseStore(path) as store:
        kinds = [e["kind"] for e in store.events(cid)]
    assert "fault" in kinds
    assert "fence_reject" not in kinds


def test_stale_commit_is_fenced_out_by_peer(tmp_path):
    """The fencing drill, in-process: a worker computes chunk 0, stops
    heartbeating, and only commits once a peer has superseded it.  The
    store must reject the stale commit; the peer's result must win."""
    path = tmp_path / "l.db"
    fingerprint, cid = _register(path, n=6, chunksize=3)

    def stale_worker():
        run_worker(WorkerConfig(
            store=path, campaign=fingerprint, worker_id="stale",
            lease_ttl=0.4, poll_interval=0.02, stale_timeout=20.0,
            install_signal_handler=False,
            fault_plan=FaultPlan.parse("stale@stale#0"),
        ))

    def healthy_worker():
        run_worker(WorkerConfig(
            store=path, campaign=fingerprint, worker_id="healthy",
            lease_ttl=0.4, poll_interval=0.02,
            install_signal_handler=False,
        ))

    import time

    threads = [
        threading.Thread(target=stale_worker),
        threading.Thread(target=healthy_worker),
    ]
    threads[0].start()
    # Only release the healthy peer once the stale worker holds its
    # lease and has stopped heartbeating (the "waiting to be
    # superseded" fault event) — otherwise a fast peer could finish the
    # whole campaign before the drill is even armed.
    deadline = time.monotonic() + 20
    with LeaseStore(path) as store:
        while time.monotonic() < deadline:
            if any(
                e["kind"] == "fault" and "superseded" in (e["detail"] or "")
                for e in store.events(cid)
            ):
                break
            time.sleep(0.02)
        else:
            raise AssertionError("stale worker never armed its fault")
    threads[1].start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()

    assert _results(path, cid) == [x * x for x in range(6)]
    with LeaseStore(path) as store:
        events = store.events(cid)
        chunk0 = store.chunk_state(cid, 0)
    kinds = [e["kind"] for e in events]
    assert kinds.count("fence_reject") >= 1
    assert kinds.count("takeover") >= 1
    # Chunk 0 was committed by the healthy worker under the bumped fence.
    assert chunk0["committed_by"] == "healthy"
    assert chunk0["committed_fence"] == chunk0["fence"] >= 2
