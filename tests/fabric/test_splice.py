"""Tests for the shared chunk/splice vocabulary (:mod:`repro.fabric.splice`)."""

import pytest

from repro.errors import ExperimentError
from repro.fabric.splice import (
    campaign_fingerprint,
    decode_chunk,
    default_chunksize,
    encode_chunk,
    make_chunks,
    splice,
)
from repro.parallel import CampaignJournal


def _square(x):
    return x * x


def _other(x):
    return x + 1


class TestChunkGeometry:
    def test_make_chunks_covers_every_item_in_order(self):
        items = list(range(10))
        chunks = make_chunks(items, 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_make_chunks_rejects_bad_chunksize(self):
        with pytest.raises(ExperimentError):
            make_chunks([1, 2], 0)

    def test_default_chunksize_scales_with_jobs(self):
        assert default_chunksize(100, 4, chunks_per_worker=4) == 7
        assert default_chunksize(0, 4) == 1  # never zero
        assert default_chunksize(5, 1, chunks_per_worker=1) == 5


class TestPayloadEncoding:
    def test_roundtrip(self):
        results = [1, "two", (3, 4), None]
        assert decode_chunk(encode_chunk(results)) == results

    def test_payload_is_ascii(self):
        encode_chunk([b"\xff\x00"]).encode("ascii")  # must not raise


class TestSplice:
    def test_reassembles_in_index_order(self):
        assert splice(3, {1: [3, 4], 0: [1, 2], 2: [5]}) == [1, 2, 3, 4, 5]

    def test_missing_chunk_raises_with_indices(self):
        with pytest.raises(ExperimentError, match=r"chunk\(s\) \[1\]"):
            splice(2, {0: [1]}, where="unit test")


class TestFingerprint:
    def test_stable_for_same_campaign(self):
        assert campaign_fingerprint(_square, [1, 2, 3]) == campaign_fingerprint(
            _square, [1, 2, 3]
        )

    def test_differs_for_different_fn_or_items(self):
        base = campaign_fingerprint(_square, [1, 2, 3])
        assert campaign_fingerprint(_other, [1, 2, 3]) != base
        assert campaign_fingerprint(_square, [1, 2]) != base

    def test_journal_fingerprint_delegates_here(self):
        # The pool and the fabric must agree on campaign identity, or
        # their journals stop being interchangeable.
        assert CampaignJournal.fingerprint(_square, [5, 6]) == campaign_fingerprint(
            _square, [5, 6]
        )
