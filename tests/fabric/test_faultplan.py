"""Tests for the deterministic fault-plan grammar and seeding."""

import pytest

from repro.errors import ExperimentError
from repro.fabric.faultplan import ACTION_KINDS, FaultAction, FaultPlan


class TestGrammar:
    def test_parse_full_plan(self):
        plan = FaultPlan.parse("kill@w1#0, stall@w0#2=3.5, stale@w2#1")
        assert [a.kind for a in plan.actions] == ["kill", "stall", "stale"]
        assert plan.actions[1] == FaultAction("stall", "w0", 2, 3.5)

    def test_parse_defaults(self):
        plan = FaultPlan.parse("stall@w0")  # ordinal 0, default duration
        (action,) = plan.actions
        assert (action.ordinal, action.duration) == (0, 2.0)

    def test_spec_roundtrips(self):
        text = "kill@w1#0,stall@w0#2=3.5,stale@w2#1,partition@w1#1=0.5"
        assert FaultPlan.parse(text).spec() == text

    def test_json_roundtrips(self):
        plan = FaultPlan.parse("kill@w1#0,partition@w0#1=1.5")
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("bad", [
        "explode@w0#0",       # unknown kind
        "kill",               # missing @worker
        "kill@#0",            # empty worker
        "kill@w0#x",          # non-integer ordinal
        "stall@w0#0=fast",    # non-numeric duration
    ])
    def test_bad_terms_raise(self, bad):
        with pytest.raises(ExperimentError):
            FaultPlan.parse(bad)


class TestAddressing:
    def test_at_matches_worker_and_ordinal(self):
        plan = FaultPlan.parse("kill@w1#2,stale@w1#2,stall@w0#2")
        assert [a.kind for a in plan.at("w1", 2)] == ["kill", "stale"]
        assert plan.at("w1", 1) == []
        assert plan.at("w2", 2) == []

    def test_for_worker_subplan(self):
        plan = FaultPlan.parse("kill@w1#0,stall@w0#1,stale@w1#1")
        sub = plan.for_worker("w1")
        assert all(a.worker == "w1" for a in sub.actions)
        assert len(sub.actions) == 2
        assert not plan.for_worker("w9")

    def test_counts_and_faulted_workers(self):
        plan = FaultPlan.parse("kill@w1#0,stall@w0#1,stale@w2#0")
        assert plan.count("kill") == 1
        assert plan.faulted_workers() == {"w0", "w1", "w2"}
        assert plan.faulted_workers("kill", "stall") == {"w0", "w1"}


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        workers = ["w0", "w1", "w2"]
        assert FaultPlan.random(7, workers) == FaultPlan.random(7, workers)

    def test_different_seed_can_differ(self):
        workers = ["w0", "w1", "w2"]
        plans = {FaultPlan.random(seed, workers).spec() for seed in range(20)}
        assert len(plans) > 1

    def test_default_plan_hits_distinct_workers(self):
        # kill + stall + stale on three workers must target three
        # distinct workers: >=30% of the fleet faulted, with the stale
        # worker alive to demonstrate the fence rejection.
        for seed in range(10):
            plan = FaultPlan.random(seed, ["w0", "w1", "w2"])
            assert len(plan.faulted_workers()) == 3

    def test_needs_workers(self):
        with pytest.raises(ExperimentError):
            FaultPlan.random(0, [])

    def test_all_kinds_constructible(self):
        plan = FaultPlan.random(
            3, ["w0", "w1"], kills=1, stalls=1, stales=1, partitions=1
        )
        assert {a.kind for a in plan.actions} == set(ACTION_KINDS)


class TestValidation:
    def test_negative_ordinal_rejected(self):
        with pytest.raises(ExperimentError):
            FaultAction("kill", "w0", -1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ExperimentError):
            FaultAction("stall", "w0", 0, -2.0)
