"""Tests for the deterministic round-robin (TDMA) broadcast."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import Graph, c_n, grid, line, random_gnp
from repro.graphs.properties import diameter
from repro.protocols.base import run_broadcast
from repro.protocols.round_robin import RoundRobinProgram, make_round_robin_programs
from repro.rng import spawn


def run_rr(g, source=0, frame_size=None):
    programs = make_round_robin_programs(g, source, frame_size=frame_size)
    frame = frame_size if frame_size is not None else max(g.nodes) + 1
    cap = frame * (diameter(g) + 2)
    return run_broadcast(g, programs, initiators={source}, max_slots=cap, stop="informed")


class TestProgram:
    def test_slot_index_validation(self):
        with pytest.raises(ProtocolError):
            RoundRobinProgram(5, 5)
        with pytest.raises(ProtocolError):
            RoundRobinProgram(-1, 5)

    def test_transmits_only_in_own_slot(self):
        from repro.sim import Context, Receive, Transmit

        prog = RoundRobinProgram(2, 5, initial_message="m")
        ctx = lambda s: Context(node=2, neighbor_ids=frozenset(), rng=spawn(0, "r"), slot=s)  # noqa: E731
        kinds = [type(prog.act(ctx(s))).__name__ for s in range(10)]
        assert kinds == ["Receive", "Receive", "Transmit", "Receive", "Receive"] * 2

    def test_max_frames_stops(self):
        from repro.sim import Context, Idle

        prog = RoundRobinProgram(0, 3, initial_message="m", max_frames=2)
        ctx = lambda s: Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "r"), slot=s)  # noqa: E731
        for s in range(6):
            prog.act(ctx(s))
        assert isinstance(prog.act(ctx(6)), Idle)
        assert prog.is_done(ctx(7))


class TestEndToEnd:
    @pytest.mark.parametrize(
        "g", [line(8), grid(3, 4), c_n(10, {3, 8})], ids=["line", "grid", "c_n"]
    )
    def test_reaches_everyone(self, g):
        assert run_rr(g).broadcast_succeeded(source=0)

    def test_never_collides(self):
        from repro.sim import Engine

        g = random_gnp(20, 0.3, spawn(1, "rr"))
        programs = make_round_robin_programs(g, 0)
        engine = Engine(g, programs, initiators={0}, record_trace=True)
        result = engine.run(20 * (diameter(g) + 2))
        assert result.metrics.collisions == 0
        for rec in result.trace:
            assert len(rec.transmitters) <= 1

    def test_completion_within_frame_times_diameter(self):
        g = grid(4, 4)
        result = run_rr(g)
        slot = result.broadcast_completion_slot(source=0)
        assert slot is not None
        assert slot < 16 * (diameter(g) + 1)

    def test_linear_on_cn(self):
        # On C_n completion needs at least min(S) slots (the sink's
        # unique informant transmits at its own slot): Theta(n) when S
        # is far down the frame.
        n = 40
        g = c_n(n, {n})
        result = run_rr(g, frame_size=n + 2)
        slot = result.broadcast_completion_slot(source=0)
        assert slot is not None
        assert slot >= n  # linear in n

    def test_requires_integer_ids(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(ProtocolError):
            make_round_robin_programs(g, "a")

    def test_larger_frame_still_correct(self):
        g = line(6)
        result = run_rr(g, frame_size=50)
        assert result.broadcast_succeeded(source=0)
