"""Tests for collision-detection protocols (Section 4 + related work)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import c_n, star
from repro.protocols.cd_protocols import (
    FourSlotCnProgram,
    TreeSplittingProgram,
    make_four_slot_cn_programs,
    make_tree_splitting_programs,
)
from repro.rng import spawn
from repro.sim import CollisionDetectingMedium, Engine, RadioMedium


def run_four_slot(n, subset, medium=None):
    g = c_n(n, subset)
    programs = make_four_slot_cn_programs(g, n)
    engine = Engine(
        g,
        programs,
        medium=medium if medium is not None else CollisionDetectingMedium(),
        initiators={0},
        enforce_no_spontaneous=False,
    )
    return engine.run(8)


class TestFourSlotCn:
    def test_role_validation(self):
        with pytest.raises(ProtocolError):
            FourSlotCnProgram("router", 5)

    def test_singleton_s_two_slots(self):
        result = run_four_slot(8, {3})
        assert result.programs[9].message == "m"
        assert result.metrics.first_reception[9] == 1

    def test_large_s_four_slots(self):
        result = run_four_slot(8, {2, 5, 7})
        assert result.programs[9].message == "m"
        assert result.metrics.first_reception[9] == 3

    def test_full_s(self):
        n = 16
        result = run_four_slot(n, set(range(1, n + 1)))
        assert result.programs[n + 1].message == "m"

    def test_all_second_layer_informed_at_slot_zero(self):
        n = 6
        result = run_four_slot(n, {2, 4})
        for i in range(1, n + 1):
            assert result.metrics.first_reception[i] == 0

    def test_poll_targets_min_id(self):
        # With S = {5, 2, 7} the sink polls processor 2.
        result = run_four_slot(8, {5, 2, 7})
        # Processor 2 transmitted at slot 3 (its poll response).
        assert result.metrics.transmissions_per_node.get(2, 0) == 2  # slot 1 + slot 3
        assert result.metrics.transmissions_per_node.get(5, 0) == 1
        assert result.metrics.first_reception[9] == 3

    def test_fails_without_collision_detection(self):
        # The same protocol on the paper's no-CD medium cannot work for
        # |S| >= 2: the sink never observes the collision, never polls.
        result = run_four_slot(8, {2, 5}, medium=RadioMedium())
        assert result.programs[9].message is None

    def test_scales_to_large_n(self):
        n = 512
        result = run_four_slot(n, set(range(100, 300)))
        assert result.programs[n + 1].message == "m"
        assert result.metrics.first_reception[n + 1] <= 3


class TestTreeSplitting:
    def run_splitting(self, n_leaves, contender_ids):
        g = star(n_leaves)
        contenders = {i: f"msg-{i}" for i in contender_ids}
        programs = make_tree_splitting_programs(g, 0, contenders)
        engine = Engine(
            g,
            programs,
            medium=CollisionDetectingMedium(),
            initiators=set(g.nodes),
            enforce_no_spontaneous=False,
        )
        result = engine.run(40 * n_leaves + 20)
        return result, contenders

    def test_single_contender(self):
        result, contenders = self.run_splitting(8, [5])
        assert result.programs[0].received_messages == ["msg-5"]

    def test_all_resolved(self):
        result, contenders = self.run_splitting(16, [1, 2, 7, 8, 16])
        assert sorted(result.programs[0].received_messages) == sorted(
            contenders.values()
        )

    def test_each_message_exactly_once(self):
        result, contenders = self.run_splitting(16, [3, 4, 5, 6])
        received = result.programs[0].received_messages
        assert len(received) == len(set(received)) == 4

    def test_adjacent_ids_resolved(self):
        # Adjacent IDs need the deepest splits.
        result, contenders = self.run_splitting(16, [7, 8])
        assert sorted(result.programs[0].received_messages) == sorted(
            contenders.values()
        )

    def test_no_contenders_terminates_fast(self):
        g = star(8)
        programs = make_tree_splitting_programs(g, 0, {})
        engine = Engine(
            g,
            programs,
            medium=CollisionDetectingMedium(),
            initiators=set(g.nodes),
            enforce_no_spontaneous=False,
        )
        result = engine.run(100)
        assert result.programs[0].received_messages == []
        assert result.slots <= 4

    def test_full_contention(self):
        result, contenders = self.run_splitting(8, list(range(1, 9)))
        assert sorted(result.programs[0].received_messages) == sorted(
            contenders.values()
        )

    def test_slots_scale_with_contenders(self):
        few, _ = self.run_splitting(32, [5])
        many, _ = self.run_splitting(32, list(range(1, 33)))
        assert few.slots < many.slots

    def test_contender_marks_resolved(self):
        result, _ = self.run_splitting(8, [2, 6])
        assert result.programs[2].result()["resolved"]
        assert result.programs[6].result()["resolved"]
        assert not result.programs[3].result()["resolved"]

    def test_validation(self):
        g = star(4)
        with pytest.raises(ProtocolError):
            TreeSplittingProgram(is_base=True, id_space=(5, 5))
        from repro.graphs import Graph

        bad = Graph(edges=[("base", "x")])
        with pytest.raises(ProtocolError):
            make_tree_splitting_programs(bad, "base", {})
