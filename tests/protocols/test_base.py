"""Tests for the shared protocol plumbing (run_broadcast, ordered_nodes)."""

import pytest

from repro.errors import SimulationError
from repro.graphs import line
from repro.protocols.base import all_informed, ordered_nodes, run_broadcast
from repro.sim import Context, Engine, Idle, NodeProgram, Receive, Transmit


class Relay(NodeProgram):
    def __init__(self, initial=None):
        self.message = initial

    def act(self, ctx):
        return Transmit(self.message) if self.message is not None else Receive()

    def on_observe(self, ctx, heard):
        from repro.sim import SILENCE

        if heard is not SILENCE and self.message is None:
            self.message = heard


class TestOrderedNodes:
    def test_numeric_order(self):
        assert ordered_nodes([10, 2, 1]) == [1, 2, 10]

    def test_string_order(self):
        assert ordered_nodes(["b", "a"]) == ["a", "b"]

    def test_mixed_types_fall_back_to_repr(self):
        out = ordered_nodes([1, "a"])
        assert set(out) == {1, "a"}
        assert out == sorted([1, "a"], key=repr)

    def test_accepts_generators(self):
        assert ordered_nodes(x for x in (3, 1, 2)) == [1, 2, 3]


class TestRunBroadcast:
    def test_requires_initiators(self):
        g = line(2)
        with pytest.raises(SimulationError):
            run_broadcast(
                g, {0: Relay("m"), 1: Relay()}, initiators=set(), max_slots=5
            )

    def test_unknown_stop_policy(self):
        g = line(2)
        with pytest.raises(SimulationError):
            run_broadcast(
                g,
                {0: Relay("m"), 1: Relay()},
                initiators={0},
                max_slots=5,
                stop="whenever",  # type: ignore[arg-type]
            )

    def test_informed_stops_at_completion(self):
        g = line(4)
        programs = {i: Relay("m" if i == 0 else None) for i in range(4)}
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=100, stop="informed"
        )
        assert result.broadcast_succeeded(source=0)
        assert result.slots <= 4  # one hop per slot on a line of relays

    def test_extra_stop_fires(self):
        g = line(4)
        programs = {i: Relay("m" if i == 0 else None) for i in range(4)}
        result = run_broadcast(
            g,
            programs,
            initiators={0},
            max_slots=100,
            extra_stop=lambda engine: engine.slot >= 2,
        )
        assert result.slots == 2

    def test_terminated_runs_to_program_completion(self):
        class OneShot(NodeProgram):
            def __init__(self, initial=None):
                self.message = initial
                self.sent = False

            def act(self, ctx):
                if self.message is not None and not self.sent:
                    self.sent = True
                    return Transmit(self.message)
                return Idle()

            def is_done(self, ctx):
                return self.sent

        g = line(2)
        result = run_broadcast(
            g,
            {0: OneShot("m"), 1: OneShot()},
            initiators={0},
            max_slots=50,
            stop="terminated",
        )
        # Node 1 never gets informed by a one-shot with no receiver, so
        # the run ends when... node 1's program is never done; capped.
        assert result.slots <= 50


class TestAllInformed:
    def test_counts_initiators_as_informed(self):
        g = line(2)
        engine = Engine(g, {0: Relay("m"), 1: Relay()}, initiators={0})
        assert not all_informed(engine)
        engine.run(2)
        assert all_informed(engine)
