"""Directed-network tests — the paper's Section 2.2 remark.

"Our protocol does not use acknowledgements. Thus it may be applied
even when the communication links are not symmetric ... The appropriate
network model is, therefore, a directed graph."
"""

import pytest

from repro.graphs import DiGraph
from repro.graphs.properties import distances_from, max_degree
from repro.protocols.decay_broadcast import (
    make_broadcast_programs,
    run_decay_broadcast,
)
from repro.rng import spawn


def directed_cycle(n: int) -> DiGraph:
    g = DiGraph(nodes=range(n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def directed_layered(widths, seed) -> DiGraph:
    """Forward-only layered digraph (no way to acknowledge backwards)."""
    rng = spawn(seed, "dir-layered")
    g = DiGraph()
    offsets = [0]
    for w in widths:
        offsets.append(offsets[-1] + w)
    for node in range(offsets[-1]):
        g.add_node(node)
    for layer in range(len(widths) - 1):
        current = range(offsets[layer], offsets[layer + 1])
        nxt = list(range(offsets[layer + 1], offsets[layer + 2]))
        for u in current:
            g.add_edge(u, rng.choice(nxt))
            for v in nxt:
                if rng.random() < 0.5:
                    g.add_edge(u, v)
        for v in nxt:  # no orphans: every node is reachable forward
            if not g.neighbors_in(v):
                g.add_edge(rng.choice(list(current)), v)
    return g


class TestDirectedBroadcast:
    def test_directed_cycle_completes(self):
        g = directed_cycle(9)
        result = run_decay_broadcast(g, source=0, seed=1, epsilon=0.05)
        assert result.broadcast_succeeded(source=0)

    def test_forward_only_layers_complete(self):
        g = directed_layered([1, 4, 4, 4], seed=2)
        result = run_decay_broadcast(g, source=0, seed=3, epsilon=0.05)
        assert result.broadcast_succeeded(source=0)

    def test_asymmetric_star_one_direction_only(self):
        # Strong transmitter at the hub: hub -> leaves but not back.
        g = DiGraph(edges=[(0, i) for i in range(1, 6)])
        result = run_decay_broadcast(g, source=0, seed=1)
        assert result.broadcast_succeeded(source=0)
        # Reverse: leaves cannot reach anyone; broadcast from a leaf
        # informs nobody.
        g2 = DiGraph(edges=[(0, i) for i in range(1, 6)])
        result2 = run_decay_broadcast(g2, source=1, seed=1, max_slots=300)
        assert not result2.broadcast_succeeded(source=1)
        assert result2.metrics.first_reception == {}

    def test_delta_uses_in_degree(self):
        # Receiver 3 hears three transmitters; Delta (the Decay k
        # parameter's base) must reflect in-degree, not out-degree.
        g = DiGraph(edges=[(0, 3), (1, 3), (2, 3), (0, 1), (0, 2)])
        assert max_degree(g) == 3
        programs, params = make_broadcast_programs(g, {0})
        assert params["k"] == 4  # 2 * ceil(log2 3)

    def test_distances_respected(self):
        g = directed_cycle(7)
        truth = distances_from(g, 0)
        result = run_decay_broadcast(g, source=0, seed=5, epsilon=0.02)
        for node, slot in result.metrics.first_reception.items():
            assert slot >= truth[node] - 1
