"""Tests for the multi-message broadcast extension ([BII89]-style)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import grid, line, star
from repro.protocols.multi_broadcast import MultiBroadcastProgram, run_multi_broadcast
from repro.rng import spawn


def all_received(result, count):
    return all(
        len(prog.received_at) >= count for prog in result.programs.values()
    )


class TestValidation:
    def test_mode(self):
        with pytest.raises(ProtocolError):
            run_multi_broadcast(line(3), 0, ["a"], mode="warp")

    def test_payloads_required(self):
        with pytest.raises(ProtocolError):
            run_multi_broadcast(line(3), 0, [])

    def test_program_params(self):
        with pytest.raises(ProtocolError):
            MultiBroadcastProgram(0, 2)
        with pytest.raises(ProtocolError):
            MultiBroadcastProgram(2, 0)


class TestDelivery:
    @pytest.mark.parametrize("mode", ["pipelined", "sequential"])
    def test_single_message(self, mode):
        result = run_multi_broadcast(line(6), 0, ["only"], mode=mode, seed=1)
        assert all_received(result, 1)

    @pytest.mark.parametrize("mode", ["pipelined", "sequential"])
    def test_multiple_messages_all_arrive(self, mode):
        payloads = [f"m{i}" for i in range(4)]
        result = run_multi_broadcast(grid(3, 3), 0, payloads, mode=mode, seed=2)
        assert all_received(result, 4)
        for prog in result.programs.values():
            assert prog.payloads == {i: f"m{i}" for i in range(4)}

    def test_star_topology(self):
        result = run_multi_broadcast(star(6), 0, ["a", "b"], seed=3)
        assert all_received(result, 2)

    def test_reproducible(self):
        a = run_multi_broadcast(grid(3, 3), 0, ["x", "y"], seed=9)
        b = run_multi_broadcast(grid(3, 3), 0, ["x", "y"], seed=9)
        assert a.slots == b.slots

    def test_order_of_reception_monotone_at_source(self):
        result = run_multi_broadcast(line(5), 0, ["a", "b", "c"], seed=4)
        source = result.programs[0]
        times = [source.received_at[i] for i in range(3)]
        assert times == sorted(times)


class TestPipelineAdvantage:
    def test_pipelined_beats_sequential_for_many_messages(self):
        payloads = [f"m{i}" for i in range(5)]
        g = grid(4, 4)
        pipe = run_multi_broadcast(g, 0, payloads, mode="pipelined", seed=5)
        seq = run_multi_broadcast(g, 0, payloads, mode="sequential", seed=5)
        assert all_received(pipe, 5) and all_received(seq, 5)
        assert pipe.slots < seq.slots

    def test_gap_parameter_respected(self):
        g = line(4)
        tight = run_multi_broadcast(
            g, 0, ["a", "b", "c"], mode="pipelined", gap_phases=2, seed=6
        )
        loose = run_multi_broadcast(
            g, 0, ["a", "b", "c"], mode="pipelined", gap_phases=30, seed=6
        )
        assert all_received(tight, 3) and all_received(loose, 3)
        assert tight.slots <= loose.slots
