"""Tests for the Decay-based BFS (Section 2.3)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import grid, line, random_tree, ring, star
from repro.graphs.properties import distances_from
from repro.protocols.decay_bfs import DecayBFSProgram, make_bfs_programs, run_bfs
from repro.rng import spawn


class TestProgramBasics:
    def test_root_labels_itself_zero(self):
        prog = DecayBFSProgram(2, 3, is_root=True)
        assert prog.distance == 0
        assert prog.result() == 0

    def test_non_root_unlabelled_until_informed(self):
        prog = DecayBFSProgram(2, 3)
        assert prog.result() is None

    def test_distance_from_superphase_of_reception(self):
        from repro.sim import Context

        prog = DecayBFSProgram(k=2, decays_per_superphase=3)  # superphase = 6
        ctx = Context(node=1, neighbor_ids=frozenset(), rng=spawn(0, "x"), slot=13)
        prog.on_observe(ctx, "bfs")
        assert prog.distance == 13 // 6 + 1 == 3

    def test_validation(self):
        with pytest.raises(ProtocolError):
            DecayBFSProgram(0, 1)
        with pytest.raises(ProtocolError):
            DecayBFSProgram(2, 0)


class TestMakePrograms:
    def test_parameters(self):
        g = star(8)
        programs, params = make_bfs_programs(g, 0, epsilon=1.0)
        assert params["k"] == 6
        assert params["superphase_len"] == params["k"] * params["decays_per_superphase"]
        assert programs[0].distance == 0

    def test_rejects_bad_upper_bound(self):
        with pytest.raises(ProtocolError):
            make_bfs_programs(line(5), 0, upper_bound_n=2)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "g,root",
        [
            (line(10), 0),
            (line(10), 4),
            (grid(4, 5), 0),
            (ring(9), 3),
            (star(7), 0),
            (star(7), 3),
            (random_tree(30, spawn(1, "t")), 0),
        ],
        ids=["line-end", "line-mid", "grid", "ring", "star-hub", "star-leaf", "tree"],
    )
    def test_labels_equal_true_distances(self, g, root):
        truth = distances_from(g, root)
        result = run_bfs(g, root, seed=2, epsilon=0.05)
        labels = result.node_results()
        assert labels == truth

    def test_slot_count_within_bound(self):
        from repro.core.bounds import bfs_slot_bound
        from repro.graphs.properties import diameter, max_degree

        g = grid(5, 5)
        result = run_bfs(g, 0, seed=1, epsilon=0.1)
        bound = bfs_slot_bound(
            g.num_nodes(), diameter(g), max_degree(g), 0.1
        )
        # The run may stop early at quiescence, never later than bound
        # plus one superphase of slack for the tail.
        _programs, params = make_bfs_programs(g, 0, epsilon=0.1)
        assert result.slots <= bound + params["superphase_len"]

    def test_layer_one_deterministic(self):
        # The root is the only transmitter of superphase 0, so all its
        # neighbours are informed at slot 0 — deterministically.
        g = star(6)
        result = run_bfs(g, 0, seed=9)
        for leaf in range(1, 7):
            assert result.metrics.first_reception[leaf] == 0

    def test_reproducible(self):
        g = grid(4, 4)
        a = run_bfs(g, 0, seed=5)
        b = run_bfs(g, 0, seed=5)
        assert a.node_results() == b.node_results()
        assert a.slots == b.slots

    def test_failure_probability_small(self):
        g = grid(4, 4)
        truth = distances_from(g, 0)
        wrong = 0
        runs = 25
        for seed in range(runs):
            labels = run_bfs(g, 0, seed=seed, epsilon=0.1).node_results()
            if labels != truth:
                wrong += 1
        assert wrong / runs <= 0.1 + 0.1  # epsilon plus Monte-Carlo slack
