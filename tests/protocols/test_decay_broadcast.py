"""Tests for the paper's randomized Broadcast protocol (Section 2.2)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import Graph, c_n, complete, grid, line, random_gnp, star
from repro.protocols.decay_broadcast import (
    DecayBroadcastProgram,
    make_broadcast_programs,
    run_decay_broadcast,
)
from repro.rng import spawn
from repro.sim import Context, Idle, Receive, Transmit


class TestProgramStateMachine:
    def _ctx(self, slot=0, node=0):
        return Context(node=node, neighbor_ids=frozenset(), rng=spawn(0, "t"), slot=slot)

    def test_waits_until_informed(self):
        prog = DecayBroadcastProgram(k=4, phases=2)
        for slot in range(6):
            assert isinstance(prog.act(self._ctx(slot)), Receive)

    def test_source_transmits_at_slot_zero(self):
        prog = DecayBroadcastProgram(k=4, phases=2, initial_message="m")
        assert isinstance(prog.act(self._ctx(0)), Transmit)

    def test_adopts_first_message_only(self):
        prog = DecayBroadcastProgram(k=4, phases=2)
        ctx = self._ctx(3)
        prog.on_observe(ctx, "first")
        prog.on_observe(self._ctx(4), "second")
        assert prog.message == "first"
        assert prog.informed_at_slot == 3

    def test_silence_not_adopted(self):
        from repro.sim import SILENCE, COLLISION

        prog = DecayBroadcastProgram(k=4, phases=2)
        prog.on_observe(self._ctx(1), SILENCE)
        prog.on_observe(self._ctx(2), COLLISION)
        assert prog.message is None

    def test_phase_alignment(self):
        # Informed at slot 2 with k=4: must wait (receive) until slot 4.
        prog = DecayBroadcastProgram(k=4, phases=1)
        prog.on_observe(self._ctx(2), "m")
        assert isinstance(prog.act(self._ctx(3)), Receive)
        assert isinstance(prog.act(self._ctx(4)), Transmit)

    def test_free_running_starts_immediately(self):
        prog = DecayBroadcastProgram(k=4, phases=1, align_phases=False)
        prog.on_observe(self._ctx(2), "m")
        assert isinstance(prog.act(self._ctx(3)), Transmit)

    def test_terminates_after_phases(self):
        prog = DecayBroadcastProgram(k=2, phases=3, initial_message="m")
        for slot in range(6):
            assert not prog.is_done(self._ctx(slot))
            prog.act(self._ctx(slot))
        assert prog.is_done(self._ctx(6))
        assert prog.result()["phases_executed"] == 3

    def test_first_slot_of_every_phase_transmits(self):
        # Decay sends at least once, so phase starts always transmit.
        prog = DecayBroadcastProgram(k=4, phases=3, initial_message="m")
        transmit_slots = []
        for slot in range(12):
            if isinstance(prog.act(self._ctx(slot)), Transmit):
                transmit_slots.append(slot)
        assert {0, 4, 8} <= set(transmit_slots)

    def test_never_reads_ids(self):
        # The program must behave identically for any node ID / neighbour
        # IDs, given the same coin stream.
        def run(node, neighbors):
            prog = DecayBroadcastProgram(k=4, phases=2, initial_message="m")
            intents = []
            for slot in range(8):
                ctx = Context(
                    node=node,
                    neighbor_ids=frozenset(neighbors),
                    rng=spawn(99, "same-stream"),
                    slot=slot,
                )
                intents.append(type(prog.act(ctx)).__name__)
            return intents

        assert run(0, []) == run("zebra", [1, 2, 3])

    def test_validation(self):
        with pytest.raises(ProtocolError):
            DecayBroadcastProgram(k=0, phases=1)
        with pytest.raises(ProtocolError):
            DecayBroadcastProgram(k=2, phases=0)


class TestMakePrograms:
    def test_parameters_derived_from_graph(self):
        g = star(8)  # max degree 8
        programs, params = make_broadcast_programs(g, {0}, epsilon=1.0)
        assert params["k"] == 6  # 2*ceil(log 8)
        assert len(programs) == 9
        assert programs[0].message == "m"
        assert programs[3].message is None

    def test_upper_bound_n_used(self):
        g = line(4)
        _, params_tight = make_broadcast_programs(g, {0}, epsilon=0.5)
        _, params_loose = make_broadcast_programs(
            g, {0}, epsilon=0.5, upper_bound_n=4096
        )
        assert params_loose["phases"] > params_tight["phases"]

    def test_upper_bound_below_n_rejected(self):
        g = line(4)
        with pytest.raises(ProtocolError):
            make_broadcast_programs(g, {0}, upper_bound_n=2)

    def test_initiators_mapping_with_messages(self):
        g = line(3)
        programs, _ = make_broadcast_programs(g, {0: "alpha", 2: "omega"})
        assert programs[0].message == "alpha"
        assert programs[2].message == "omega"
        assert programs[1].message is None


class TestEndToEnd:
    @pytest.mark.parametrize(
        "g",
        [line(12), grid(4, 4), star(10), complete(8), c_n(12, {5, 6, 7})],
        ids=["line", "grid", "star", "clique", "c_n"],
    )
    def test_broadcast_reaches_everyone(self, g):
        # With epsilon = 0.05 one seeded run should virtually always work;
        # the seed below was NOT cherry-picked (first try), and failure
        # of a single run is itself within the protocol's contract, so
        # we allow one retry before declaring a bug.
        ok = any(
            run_decay_broadcast(g, source=0, seed=seed, epsilon=0.05)
            .broadcast_succeeded(source=0)
            for seed in (1, 2)
        )
        assert ok

    def test_deterministic_given_seed(self):
        g = random_gnp(40, 0.1, spawn(0, "g"))
        a = run_decay_broadcast(g, source=0, seed=77, epsilon=0.1)
        b = run_decay_broadcast(g, source=0, seed=77, epsilon=0.1)
        assert a.slots == b.slots
        assert a.metrics.first_reception == b.metrics.first_reception

    def test_different_seeds_differ(self):
        g = random_gnp(40, 0.1, spawn(0, "g"))
        outcomes = {
            run_decay_broadcast(g, source=0, seed=s, epsilon=0.1).slots
            for s in range(6)
        }
        assert len(outcomes) > 1

    def test_single_node_graph(self):
        g = Graph(nodes=[0])
        result = run_decay_broadcast(g, source=0, seed=0)
        assert result.broadcast_succeeded(source=0)

    def test_two_node_graph_completes_at_slot_zero(self):
        g = line(2)
        result = run_decay_broadcast(g, source=0, seed=0)
        assert result.broadcast_completion_slot(source=0) == 0

    def test_failed_run_reports_failure(self):
        # Cap the run absurdly short: must report not-succeeded rather
        # than hang or lie.
        g = line(30)
        result = run_decay_broadcast(g, source=0, seed=0, max_slots=3)
        assert not result.broadcast_succeeded(source=0)

    def test_termination_mode_runs_all_phases(self):
        g = grid(3, 3)
        result = run_decay_broadcast(g, source=0, seed=4, stop="terminated")
        for node, res in result.node_results().items():
            if res["informed"]:
                assert res["phases_executed"] == result.programs[node].phases

    def test_id_relabeling_invariance(self):
        # Same topology, same per-node coin streams, renamed IDs: the
        # protocol's slot-by-slot outcome must be isomorphic (property:
        # no IDs are used).  We relabel and re-map the seeds so node x
        # in g corresponds to node f(x) in h with the same coins.
        g = line(6)
        result_g = run_decay_broadcast(g, source=0, seed=13, epsilon=0.2)
        # Relabel i -> i (identity) is trivial; instead check that the
        # engine gives coins by node label, so shifting labels with the
        # same seeds shifts outcomes consistently: run on the relabeled
        # graph with a seed-preserving wrapper is equivalent to renaming
        # the metrics keys.
        mapping = {i: i + 100 for i in range(6)}
        h = g.relabeled(mapping)
        from repro.protocols.decay_broadcast import make_broadcast_programs
        from repro.sim import Engine

        programs, params = make_broadcast_programs(h, {100})

        class SeedAlias(Engine):
            pass

        engine = Engine(h, programs, seed=13, initiators={100})
        # Force per-node rng streams to mirror the original labels.
        for old, new in mapping.items():
            engine._contexts[new].rng = spawn(13, "node", old)
        result_h = engine.run(result_g.slots)
        expected = {
            mapping[v]: slot
            for v, slot in result_g.metrics.first_reception.items()
        }
        assert result_h.metrics.first_reception == expected
