"""Tests for the scheduled-replay protocol and the ALOHA baseline."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import grid, line, random_gnp, star
from repro.core.schedule import greedy_layer_schedule, sequential_tree_schedule
from repro.protocols.aloha import AlohaBroadcastProgram, make_aloha_programs
from repro.protocols.base import run_broadcast
from repro.protocols.scheduled import ScheduledProgram, make_scheduled_programs
from repro.rng import spawn


class TestScheduledProgram:
    def test_slots_outside_schedule_rejected(self):
        with pytest.raises(ProtocolError):
            ScheduledProgram([5], 3)

    def test_uninformed_transmission_raises(self):
        from repro.sim import Context

        prog = ScheduledProgram([0], 2)  # must transmit at 0, never informed
        ctx = Context(node=1, neighbor_ids=frozenset(), rng=spawn(0, "s"), slot=0)
        with pytest.raises(ProtocolError, match="invalid schedule"):
            prog.act(ctx)

    def test_unknown_node_in_schedule(self):
        g = line(3)
        with pytest.raises(ProtocolError):
            make_scheduled_programs(g, 0, [frozenset({99})])

    @pytest.mark.parametrize(
        "g", [line(7), grid(4, 4), star(6)], ids=["line", "grid", "star"]
    )
    def test_replaying_tree_schedule_informs_all(self, g):
        schedule = sequential_tree_schedule(g, 0)
        programs = make_scheduled_programs(g, 0, schedule)
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=len(schedule) + 1, stop="terminated"
        )
        assert result.broadcast_succeeded(source=0)

    def test_replaying_greedy_schedule_informs_all(self):
        g = random_gnp(40, 0.12, spawn(2, "sched"))
        schedule = greedy_layer_schedule(g, 0)
        programs = make_scheduled_programs(g, 0, schedule)
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=len(schedule) + 1, stop="terminated"
        )
        assert result.broadcast_succeeded(source=0)

    def test_done_after_schedule(self):
        from repro.sim import Context

        prog = ScheduledProgram([0], 2, initial_message="m")
        ctx = Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "s"), slot=2)
        assert prog.is_done(ctx)


class TestAloha:
    def test_probability_validated(self):
        with pytest.raises(ProtocolError):
            AlohaBroadcastProgram(0.0)
        with pytest.raises(ProtocolError):
            AlohaBroadcastProgram(1.5)

    def test_p_one_always_transmits_once_informed(self):
        from repro.sim import Context, Transmit

        prog = AlohaBroadcastProgram(1.0, initial_message="m")
        ctx = Context(node=0, neighbor_ids=frozenset(), rng=spawn(0, "a"), slot=0)
        assert isinstance(prog.act(ctx), Transmit)

    def test_broadcast_on_line_completes(self):
        g = line(8)
        programs = make_aloha_programs(g, 0, p=0.5)
        result = run_broadcast(g, programs, initiators={0}, max_slots=2000)
        assert result.broadcast_succeeded(source=0)

    def test_p_one_floods_and_stalls_on_shared_receiver(self):
        # hub-and-leaves: with p=1 both informed leaves always collide at
        # the next hop, so the far side never hears anything.
        g = star(2)  # 0 hub, leaves 1, 2
        g.add_edge(1, 3)
        g.add_edge(2, 3)  # node 3 hears leaves 1 and 2
        programs = make_aloha_programs(g, 3, p=1.0)
        # 3 informs 1 and 2 (single transmitter); then both flood: hub 0
        # gets permanent collision.
        result = run_broadcast(g, programs, initiators={3}, max_slots=300)
        assert not result.broadcast_succeeded(source=3)
        assert 0 not in result.metrics.first_reception

    def test_active_slots_bound_terminates(self):
        g = line(3)
        programs = make_aloha_programs(g, 0, p=0.6, active_slots=5)
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=500, stop="terminated"
        )
        assert result.slots < 500

    def test_reproducible(self):
        g = random_gnp(20, 0.2, spawn(0, "al"))
        r1 = run_broadcast(
            g, make_aloha_programs(g, 0, 0.3), initiators={0}, max_slots=500, seed=5
        )
        r2 = run_broadcast(
            g, make_aloha_programs(g, 0, 0.3), initiators={0}, max_slots=500, seed=5
        )
        assert r1.metrics.first_reception == r2.metrics.first_reception
