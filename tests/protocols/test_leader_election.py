"""Tests for Decay-based leader election."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import Graph, complete, grid, line, random_gnp, ring
from repro.protocols.leader_election import (
    LeaderElectionProgram,
    run_leader_election,
)
from repro.rng import spawn


class TestProgramValidation:
    def test_id_must_fit_bits(self):
        with pytest.raises(ProtocolError):
            LeaderElectionProgram(8, 3, 2, 2, 100)

    def test_epoch_len_must_fit_phases(self):
        with pytest.raises(ProtocolError):
            LeaderElectionProgram(1, 3, k=4, phases=5, epoch_len=10)


class TestElection:
    @pytest.mark.parametrize(
        "g",
        [line(8), ring(9), grid(3, 4), complete(6)],
        ids=["line", "ring", "grid", "clique"],
    )
    def test_elects_max_id(self, g):
        result = run_leader_election(g, seed=2, epsilon=0.1)
        expected = max(g.nodes)
        outputs = result.node_results()
        assert all(out["winner_id"] == expected for out in outputs.values())
        leaders = [node for node, out in outputs.items() if out["is_leader"]]
        assert leaders == [expected]

    def test_agreement_even_if_wrong(self):
        # All nodes should at least agree on a winner (consistency).
        g = random_gnp(24, 0.15, spawn(1, "le"))
        result = run_leader_election(g, seed=3, epsilon=0.2)
        winners = {out["winner_id"] for out in result.node_results().values()}
        assert len(winners) == 1

    def test_non_contiguous_ids(self):
        g = Graph(edges=[(3, 10), (10, 21), (21, 3)])
        result = run_leader_election(g, seed=4, epsilon=0.1)
        outputs = result.node_results()
        assert all(out["winner_id"] == 21 for out in outputs.values())

    def test_reproducible(self):
        g = grid(3, 3)
        a = run_leader_election(g, seed=5)
        b = run_leader_election(g, seed=5)
        assert a.node_results() == b.node_results()
        assert a.slots == b.slots

    def test_success_rate_across_seeds(self):
        g = grid(3, 3)
        wins = 0
        runs = 10
        for seed in range(runs):
            result = run_leader_election(g, seed=seed, epsilon=0.1)
            outputs = result.node_results()
            if all(out["winner_id"] == 8 for out in outputs.values()):
                wins += 1
        assert wins >= runs - 2  # allow the epsilon failures

    def test_requires_integer_ids(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(ProtocolError):
            run_leader_election(g)

    def test_single_node(self):
        g = Graph(nodes=[0])
        result = run_leader_election(g, seed=0)
        out = result.node_results()[0]
        assert out["winner_id"] == 0 and out["is_leader"]
