"""Tests for point-to-point routing ([BII89] application)."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import grid, line, random_gnp, ring
from repro.graphs.properties import distances_from
from repro.protocols.routing import RoutingProgram, run_routing
from repro.rng import spawn


class TestProgramValidation:
    def test_geometry_validated(self):
        with pytest.raises(ProtocolError):
            RoutingProgram(2, 0, 3)
        with pytest.raises(ProtocolError):
            RoutingProgram(2, 4, 0)

    def test_source_equals_target_rejected(self):
        with pytest.raises(ProtocolError):
            run_routing(line(4), 1, 1)


class TestDelivery:
    @pytest.mark.parametrize(
        "g,source,target",
        [
            (line(10), 0, 9),
            (line(10), 9, 0),
            (ring(9), 0, 4),
            (grid(4, 4), 0, 15),
            (grid(5, 5), 12, 0),
        ],
        ids=["line-fwd", "line-back", "ring", "grid-corner", "grid-center"],
    )
    def test_packet_arrives(self, g, source, target):
        out = run_routing(g, source, target, seed=3, epsilon=0.05)
        assert out["delivered"]
        assert out["payload_at_target"] == "packet"

    def test_random_graphs(self):
        for seed in range(4):
            g = random_gnp(40, 0.1, spawn(seed, "route"))
            out = run_routing(g, 0, 39, seed=seed, epsilon=0.05)
            assert out["delivered"]

    def test_hop_distance_reported(self):
        g = line(8)
        out = run_routing(g, 0, 7, seed=1, epsilon=0.05)
        assert out["hop_distance"] == 7

    def test_forwarding_slots_proportional_to_distance(self):
        g = line(16)
        near = run_routing(g, 12, 15, seed=2, epsilon=0.05)
        far = run_routing(g, 0, 15, seed=2, epsilon=0.05)
        assert near["delivered"] and far["delivered"]
        assert near["forwarding_slots"] < far["forwarding_slots"]


class TestBeamConfinement:
    """Routing is not flooding: only shortest-path nodes carry the packet."""

    def test_beam_on_line_is_the_path(self):
        g = line(12)
        out = run_routing(g, 0, 11, seed=4, epsilon=0.05)
        assert out["delivered"]
        assert out["beam"] == list(range(12))  # the whole line IS the path

    def test_beam_excludes_off_path_branches(self):
        # A path 0-1-2-3 with a dead-end branch hanging off node 1.
        from repro.graphs import Graph

        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (1, 10), (10, 11)])
        out = run_routing(g, 0, 3, seed=5, epsilon=0.05)
        assert out["delivered"]
        assert 11 not in out["beam"]  # the branch tip never holds the packet
        # Node 10 (distance 3 from target via 1) is also off the beam:
        # the packet reaches node 1 carrying hop counter 2, and 10's
        # label is 3, so it never adopts.
        assert 10 not in out["beam"]

    def test_beam_smaller_than_broadcast_on_grid(self):
        g = grid(6, 6)
        out = run_routing(g, 0, 5, seed=6, epsilon=0.05)  # along the top edge
        assert out["delivered"]
        # The beam is confined to nodes on shortest 0->5 paths (labels
        # along the top rows), a small fraction of 36 nodes.
        assert out["beam_size"] <= 12

    def test_beam_members_lie_on_shortest_paths(self):
        g = grid(5, 5)
        source, target = 0, 24
        out = run_routing(g, source, target, seed=7, epsilon=0.05)
        assert out["delivered"]
        dist_to_target = distances_from(g, target)
        dist_from_source = distances_from(g, source)
        total = dist_from_source[target]
        for node in out["beam"]:
            assert dist_from_source[node] + dist_to_target[node] == total
