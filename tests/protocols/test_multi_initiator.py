"""Tests for the Remark after Theorem 4: multi-initiator Broadcast_scheme.

"Theorem 4 remains valid also in the case that Broadcast is initiated
by a non-empty set of processors at the same time with the same initial
message. ... In case [they have] arbitrary (i.e., not necessarily
identical) messages then, with high probability, each processor
terminates getting at least one of these messages."
"""

import pytest

from repro.graphs import grid, line, random_gnp
from repro.protocols.base import run_broadcast
from repro.protocols.decay_broadcast import make_broadcast_programs
from repro.rng import spawn


def run_multi_initiator(g, initiators, *, seed=0, epsilon=0.05, max_slots=4000):
    programs, params = make_broadcast_programs(g, initiators, epsilon=epsilon)
    return run_broadcast(
        g,
        programs,
        initiators=set(initiators),
        max_slots=max_slots,
        seed=seed,
        stop="informed",
    )


class TestIdenticalMessages:
    def test_two_initiators_same_message(self):
        g = grid(4, 4)
        result = run_multi_initiator(g, {0, 15})
        informed = set(result.metrics.first_reception) | {0, 15}
        assert informed == set(g.nodes)
        for res in result.node_results().values():
            assert res["message"] in (None, "m") or res["message"] == "m"

    def test_many_initiators_faster_than_one(self):
        g = line(40)
        single = run_multi_initiator(g, {0}, seed=3)
        multi = run_multi_initiator(g, {0, 20, 39}, seed=3)
        t_single = single.metrics.completion_slot(g.nodes, skip=frozenset({0}))
        t_multi = multi.metrics.completion_slot(g.nodes, skip=frozenset({0, 20, 39}))
        assert t_multi is not None and t_single is not None
        assert t_multi < t_single

    def test_all_nodes_initiators_trivially_done(self):
        g = grid(3, 3)
        result = run_multi_initiator(g, set(g.nodes))
        assert result.slots == 0  # everyone already informed


class TestArbitraryMessages:
    def test_everyone_gets_some_message(self):
        g = random_gnp(36, 0.12, spawn(4, "mi"))
        initiators = {0: "alpha", 7: "beta", 13: "gamma"}
        result = run_multi_initiator(g, initiators, seed=9)
        payloads = set(initiators.values())
        for node, res in result.node_results().items():
            if node in initiators:
                assert res["message"] == initiators[node]
            else:
                assert res["message"] in payloads

    def test_messages_partition_the_network(self):
        # Far-apart sources on a line split the territory near the middle.
        g = line(30)
        initiators = {0: "west", 29: "east"}
        result = run_multi_initiator(g, initiators, seed=2)
        got = {n: r["message"] for n, r in result.node_results().items()}
        assert got[1] == "west"
        assert got[28] == "east"
        assert set(got.values()) == {"west", "east"}
