"""Tests for the deterministic DFS token broadcast (Section 3.4)."""

import pytest

from repro.graphs import Graph, c_n, complete, grid, line, random_gnp, ring, star
from repro.protocols.base import run_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.rng import spawn


def run_dfs(g, source=0, max_slots=None):
    programs = make_dfs_programs(g, source)
    cap = max_slots if max_slots is not None else 4 * g.num_nodes() + 4
    return run_broadcast(g, programs, initiators={source}, max_slots=cap, stop="informed")


class TestCorrectness:
    @pytest.mark.parametrize(
        "g",
        [
            line(10),
            ring(9),
            grid(4, 4),
            star(8),
            complete(7),
            c_n(10, {4, 7}),
        ],
        ids=["line", "ring", "grid", "star", "clique", "c_n"],
    )
    def test_reaches_everyone(self, g):
        result = run_dfs(g)
        assert result.broadcast_succeeded(source=0)

    def test_random_graphs(self):
        for seed in range(5):
            g = random_gnp(40, 0.1, spawn(seed, "dfs-g"))
            assert run_dfs(g).broadcast_succeeded(source=0)

    def test_single_node(self):
        g = Graph(nodes=[0])
        result = run_dfs(g)
        assert result.broadcast_succeeded(source=0)

    def test_deterministic(self):
        g = random_gnp(30, 0.15, spawn(3, "dfs-g"))
        a = run_dfs(g)
        b = run_dfs(g)
        assert a.metrics.first_reception == b.metrics.first_reception


class TestTwoNBound:
    """Section 3.4: completion within 2n slots."""

    @pytest.mark.parametrize(
        "g",
        [line(15), grid(5, 5), complete(10), c_n(20, set(range(5, 15)))],
        ids=["line", "grid", "clique", "c_n"],
    )
    def test_within_2n(self, g):
        result = run_dfs(g)
        slot = result.broadcast_completion_slot(source=0)
        assert slot is not None
        assert slot <= 2 * g.num_nodes()

    def test_random_graphs_within_2n(self):
        for seed in range(5):
            g = random_gnp(50, 0.08, spawn(seed, "dfs-b"))
            slot = run_dfs(g).broadcast_completion_slot(source=0)
            assert slot is not None and slot <= 2 * g.num_nodes()


class TestNoCollisions:
    def test_exactly_one_transmitter_per_active_slot(self):
        g = random_gnp(25, 0.2, spawn(7, "dfs-c"))
        programs = make_dfs_programs(g, 0)
        from repro.sim import Engine

        engine = Engine(g, programs, initiators={0}, record_trace=True)
        result = engine.run(4 * g.num_nodes())
        for rec in result.trace:
            assert len(rec.transmitters) <= 1
        assert result.metrics.collisions == 0


class TestTokenSemantics:
    def test_line_token_order(self):
        # On a path the token marches down; node i first hears at slot i-1.
        g = line(6)
        result = run_dfs(g)
        for node in range(1, 6):
            assert result.metrics.first_reception[node] == node - 1

    def test_visited_counts_complete(self):
        g = grid(3, 3)
        programs = make_dfs_programs(g, 0)
        # Run to full termination (not just all-informed) so the token
        # finishes its traversal and returns to the source.
        result = run_broadcast(
            g, programs, initiators={0}, max_slots=4 * g.num_nodes() + 4,
            stop="terminated",
        )
        assert result.programs[0].result()["visited_count"] == g.num_nodes()

    def test_parent_pointers_form_tree(self):
        g = random_gnp(20, 0.25, spawn(9, "dfs-t"))
        result = run_dfs(g, max_slots=200)
        parents = {
            node: res["parent"] for node, res in result.node_results().items()
        }
        assert parents[0] is None
        # Following parents from any visited node reaches the source.
        for node in g.nodes:
            seen = set()
            current = node
            while current != 0 and parents.get(current) is not None:
                assert current not in seen
                seen.add(current)
                current = parents[current]
