"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_broadcast_defaults(self):
        args = build_parser().parse_args(["broadcast"])
        assert args.topology == "gnp"
        assert args.n == 64
        assert args.seed == 0


class TestBroadcastCommand:
    def test_runs_and_reports(self, capsys):
        code = main(["broadcast", "--topology", "grid", "-n", "16", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "broadcast complete at slot" in out

    def test_timeline_rendering(self, capsys):
        code = main(
            ["broadcast", "--topology", "line", "-n", "6", "--timeline", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "|" in out and "T" in out

    def test_cn_topology(self, capsys):
        code = main(["broadcast", "--topology", "cn", "-n", "16", "--seed", "2"])
        assert code == 0


class TestBfsCommand:
    def test_prints_distances(self, capsys):
        code = main(["bfs", "--topology", "line", "-n", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "node 4: distance 4" in out


class TestGapCommand:
    def test_prints_table_and_fits(self, capsys):
        code = main(["gap", "--quick", "--reps", "4", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Corollary 13" in out
        assert "round_robin_vs_n" in out


class TestExperimentCommand:
    def test_e1(self, capsys):
        code = main(["experiment", "e1", "--quick", "--reps", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in out

    def test_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_e10(self, capsys):
        code = main(["experiment", "e10", "--quick", "--reps", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 slots" in out or "C_n" in out


class TestChaosCommand:
    def test_quick_campaign_passes(self, capsys):
        code = main(["chaos", "--quick", "--seed", "99"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos campaign" in out
        assert "campaign PASSED" in out

    def test_json_output(self, capsys):
        import json

        code = main(["chaos", "--quick", "--seed", "99", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["passed"] is True
        assert payload["config"]["n"] == 16

    def test_journal_and_resume(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        code = main(["chaos", "--quick", "--seed", "99", "--journal", str(journal)])
        assert code == 0
        assert journal.exists()
        first = capsys.readouterr().out
        code = main(
            ["chaos", "--quick", "--seed", "99", "--journal", str(journal), "--resume"]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        assert resumed.splitlines()[:8] == first.splitlines()[:8]

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--quick", "--resume"])


class TestGameCommand:
    def test_foils_sweep(self, capsys):
        code = main(["game", "--strategy", "sweep", "-n", "20", "--show-set"])
        out = capsys.readouterr().out
        assert code == 0
        assert "survived 10 moves" in out
        assert "S = [" in out

    def test_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["game", "--strategy", "psychic"])

    def test_protocol_strategies(self, capsys):
        for strat in ("protocol-rr", "protocol-split"):
            code = main(["game", "--strategy", strat, "-n", "16"])
            assert code == 0
