"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_broadcast_defaults(self):
        args = build_parser().parse_args(["broadcast"])
        assert args.topology == "gnp"
        assert args.n == 64
        assert args.seed == 0


class TestBroadcastCommand:
    def test_runs_and_reports(self, capsys):
        code = main(["broadcast", "--topology", "grid", "-n", "16", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "broadcast complete at slot" in out

    def test_timeline_rendering(self, capsys):
        code = main(
            ["broadcast", "--topology", "line", "-n", "6", "--timeline", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "|" in out and "T" in out

    def test_cn_topology(self, capsys):
        code = main(["broadcast", "--topology", "cn", "-n", "16", "--seed", "2"])
        assert code == 0


class TestBfsCommand:
    def test_prints_distances(self, capsys):
        code = main(["bfs", "--topology", "line", "-n", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "node 4: distance 4" in out


class TestGapCommand:
    def test_prints_table_and_fits(self, capsys):
        code = main(["gap", "--quick", "--reps", "4", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Corollary 13" in out
        assert "round_robin_vs_n" in out


class TestExperimentCommand:
    def test_e1(self, capsys):
        code = main(["experiment", "e1", "--quick", "--reps", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in out

    def test_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_e10(self, capsys):
        code = main(["experiment", "e10", "--quick", "--reps", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 slots" in out or "C_n" in out


class TestChaosCommand:
    def test_quick_campaign_passes(self, capsys):
        code = main(["chaos", "--quick", "--seed", "99"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos campaign" in out
        assert "campaign PASSED" in out

    def test_json_output(self, capsys):
        import json

        code = main(["chaos", "--quick", "--seed", "99", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["passed"] is True
        assert payload["config"]["n"] == 16

    def test_journal_and_resume(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        code = main(["chaos", "--quick", "--seed", "99", "--journal", str(journal)])
        assert code == 0
        assert journal.exists()
        first = capsys.readouterr().out
        code = main(
            ["chaos", "--quick", "--seed", "99", "--journal", str(journal), "--resume"]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        assert resumed.splitlines()[:8] == first.splitlines()[:8]

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--quick", "--resume"])


class TestGameCommand:
    def test_foils_sweep(self, capsys):
        code = main(["game", "--strategy", "sweep", "-n", "20", "--show-set"])
        out = capsys.readouterr().out
        assert code == 0
        assert "survived 10 moves" in out
        assert "S = [" in out

    def test_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["game", "--strategy", "psychic"])

    def test_protocol_strategies(self, capsys):
        for strat in ("protocol-rr", "protocol-split"):
            code = main(["game", "--strategy", strat, "-n", "16"])
            assert code == 0


class TestObservabilityFlags:
    def test_gap_telemetry_writes_valid_log_and_manifest(self, capsys, tmp_path):
        log = tmp_path / "gap.jsonl"
        code = main(
            ["gap", "--quick", "--reps", "2", "--seed", "5", "--telemetry", str(log)]
        )
        assert code == 0
        from repro.telemetry.summary import read_records, validate_log

        assert validate_log(log) == []
        records = read_records(log)
        kinds = {r["kind"] for r in records}
        assert {"manifest", "run_begin", "run_end", "phase"} <= kinds
        protos = {r["proto"] for r in records if r["kind"] == "phase"}
        assert "decay-broadcast" in protos
        manifest = json.loads((tmp_path / "gap.jsonl.manifest.json").read_text())
        assert manifest["command"] == "gap"
        assert manifest["seed"] == 5
        assert manifest["config"]["reps"] == 2
        assert "config_fingerprint" in manifest

    def test_telemetry_recorder_is_cleared_after_run(self, tmp_path):
        from repro.telemetry.core import get_active

        main(["gap", "--quick", "--reps", "1", "--telemetry", str(tmp_path / "t.jsonl")])
        assert get_active() is None

    def test_telemetry_summary_command(self, capsys, tmp_path):
        log = tmp_path / "gap.jsonl"
        main(["gap", "--quick", "--reps", "2", "--telemetry", str(log)])
        capsys.readouterr()
        code = main(["telemetry", str(log)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Telemetry log overview" in out
        assert "decay-broadcast" in out

    def test_telemetry_summary_json(self, capsys, tmp_path):
        log = tmp_path / "gap.jsonl"
        main(["gap", "--quick", "--reps", "1", "--telemetry", str(log)])
        capsys.readouterr()
        code = main(["telemetry", str(log), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["runs"]["count"] > 0

    def test_telemetry_validate_ok_and_invalid(self, capsys, tmp_path):
        log = tmp_path / "gap.jsonl"
        main(["gap", "--quick", "--reps", "1", "--telemetry", str(log)])
        capsys.readouterr()
        assert main(["telemetry", str(log), "--validate"]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "mystery", "ts": 1.0}\n')
        assert main(["telemetry", str(bad), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_profile_prints_hotspots(self, capsys):
        code = main(["gap", "--quick", "--reps", "1", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cumulative" in out
        assert "function calls" in out

    def test_chaos_telemetry_with_pool(self, capsys, tmp_path):
        log = tmp_path / "chaos.jsonl"
        code = main(
            ["chaos", "--quick", "--seed", "7", "--jobs", "2", "--telemetry", str(log)]
        )
        assert code == 0
        from repro.telemetry.summary import read_records, validate_log

        assert validate_log(log) == []
        records = read_records(log)
        chunk_records = [r for r in records if r["kind"] == "chunk"]
        assert chunk_records
        assert all("queue_s" in r for r in chunk_records)
        # Worker-side engine runs were shipped back chunk-tagged.
        assert any(r["kind"] == "run_end" and "chunk" in r for r in records)

    def test_log_level_flag(self, capsys):
        import logging

        code = main(["--log-level", "INFO", "chaos", "--quick", "--seed", "99"])
        assert code == 0
        logging.getLogger().setLevel(logging.WARNING)  # undo basicConfig level

    def test_log_level_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "LOUD", "chaos", "--quick"])


class TestObsCommands:
    """End-to-end obs pipeline: run -> auto-ingest -> query/report/explain."""

    @pytest.fixture()
    def ingested(self, capsys, tmp_path):
        db = tmp_path / "runs.db"
        for seed in (5, 6):
            code = main([
                "gap", "--quick", "--reps", "2", "--seed", str(seed),
                "--telemetry", str(tmp_path / f"g{seed}.jsonl"),
                "--provenance", "--obs-db", str(db),
            ])
            assert code == 0
        out = capsys.readouterr().out
        assert "[obs]" in out
        return db, tmp_path

    def test_auto_ingest_and_reingest_idempotent(self, capsys, ingested):
        db, tmp_path = ingested
        code = main(["obs", "ingest", str(db), str(tmp_path / "g5.jsonl")])
        out = capsys.readouterr().out
        assert code == 0
        assert "re-ingested (replaced)" in out

    def test_report_tables_and_html(self, capsys, ingested):
        db, tmp_path = ingested
        assert main(["obs", "report", str(db)]) == 0
        out = capsys.readouterr().out
        assert "Run" in out and "slots_per_sec" in out
        html = tmp_path / "run.html"
        assert main(["obs", "report", str(db), "--html", str(html)]) == 0
        assert "<html" in html.read_text(encoding="utf-8")

    def test_compare_prev_latest(self, capsys, ingested):
        db, _ = ingested
        assert main(["obs", "compare", str(db), "prev", "latest"]) == 0
        out = capsys.readouterr().out
        assert "slots" in out and "vs" in out

    def test_trend_check_passes_without_regression(self, capsys, ingested):
        db, _ = ingested
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "-> OK" in out

    def test_trend_check_fails_on_injected_regression(self, capsys, ingested):
        db, _ = ingested
        # Inject a latest run whose throughput fell >= 20% below baseline.
        from repro.obs import RunStore

        with RunStore(db) as store:
            latest = store.runs()[-1]
            baseline = store.metrics_for(store.runs()[0]["id"])["slots_per_sec"]
            store.add_metrics(latest["id"], {"slots_per_sec": baseline * 0.5})
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out

    def test_trend_html(self, capsys, ingested):
        db, tmp_path = ingested
        html = tmp_path / "trend.html"
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--html", str(html)])
        assert code == 0
        assert "<svg" in html.read_text(encoding="utf-8")

    def test_explain_hit_and_miss(self, capsys, ingested):
        db, _ = ingested
        from repro.obs import RunStore

        with RunStore(db) as store:
            run_id = store.runs()[-1]["id"]
            entry = store.conn.execute(
                "SELECT node, slot FROM provenance WHERE run_id = ?"
                " AND outcome = 'delivered' LIMIT 1", (run_id,)
            ).fetchone()
        assert entry is not None
        code = main(["obs", "explain", str(db), "--node", str(entry["node"]),
                     "--slot", str(entry["slot"])])
        out = capsys.readouterr().out
        assert code == 0
        assert "RECEIVED" in out
        code = main(["obs", "explain", str(db), "--node", str(entry["node"]),
                     "--slot", "99999"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no provenance entry" in out

    def test_obs_db_requires_telemetry(self, tmp_path):
        with pytest.raises(SystemExit, match="requires --telemetry"):
            main(["gap", "--quick", "--reps", "1",
                  "--obs-db", str(tmp_path / "runs.db")])

    def test_ingest_missing_file_fails(self, capsys, tmp_path):
        code = main(["obs", "ingest", str(tmp_path / "runs.db"),
                     str(tmp_path / "absent.jsonl")])
        out = capsys.readouterr().out
        assert code == 1
        assert "INGEST FAILED" in out

    def test_empty_store_errors_cleanly(self, tmp_path):
        db = tmp_path / "empty.db"
        with pytest.raises(SystemExit, match="empty"):
            main(["obs", "report", str(db)])

    def test_bench_trend_from_committed_history(self, capsys, tmp_path):
        import pathlib

        history = pathlib.Path("benchmarks/results/bench_history.jsonl")
        if not history.exists():
            pytest.skip("no committed bench history")
        db = tmp_path / "bench.db"
        assert main(["obs", "ingest", str(db), str(history)]) == 0
        capsys.readouterr()
        code = main(["obs", "trend", str(db), "--source", "bench",
                     "--metric", "combined_slots_per_sec"])
        out = capsys.readouterr().out
        assert code == 0
        assert "combined_slots_per_sec" in out


class TestGateExitCodeContract:
    """The documented CI-gate contract: 0 = checked and clean,
    1 = regression verdict, 2 = bad invocation.  A typo in a gate must
    never read as a pass (0) or as a regression (1)."""

    def test_trend_check_bad_threshold_exits_2(self, capsys, tmp_path):
        db = tmp_path / "runs.db"
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--check", "--threshold", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "obs trend" in err

    def test_trend_bad_baseline_exits_2(self, capsys, tmp_path):
        db = tmp_path / "runs.db"
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--check", "--baseline-k", "0"])
        assert code == 2

    def test_perf_check_bad_threshold_exits_2(self, capsys, tmp_path):
        db = tmp_path / "runs.db"
        code = main(["obs", "perf", str(db), "--metric", "perf.samples",
                     "--check", "--threshold", "-1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "obs perf" in err

    def test_fleet_metrics_without_snapshots_exits_2(self, capsys, tmp_path):
        log = tmp_path / "plain.jsonl"
        log.write_text('{"kind": "event", "ts": 1.0, "name": "x"}\n',
                       encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "metrics", str(log)])
        assert excinfo.value.code == 2

    def test_fleet_metrics_json_round_trips(self, capsys, tmp_path):
        import json as json_mod

        from repro.fleet.metrics import MetricsRegistry
        from repro.telemetry import Telemetry

        log = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        registry.counter("commit_total", worker="w0").inc(4)
        with Telemetry.to_path(log) as tel:
            registry.emit(tel)
        assert main(["fleet", "metrics", str(log), "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["commit_total"]["series"][0]["value"] == 4.0


class TestTelemetryValidateRobustness:
    def test_reports_all_bad_lines_with_numbers(self, capsys, tmp_path):
        log = tmp_path / "mixed.jsonl"
        with log.open("wb") as stream:
            stream.write(b'{"kind": "gauge", "ts": 1.0, "name": "x", "value": 1}\n')
            stream.write(b"not json\n")
            stream.write(b'{"kind": "bogus", "ts": 2.0}\n')
            stream.write(b"\xff\xfe broken\n")
            stream.write(b'{"kind": "gauge", "ts": 3.0, "name": "y", "value": 2}\n')
        code = main(["telemetry", str(log), "--validate"])
        out = capsys.readouterr().out
        assert code == 1
        assert "line 2" in out and "line 3" in out and "line 4" in out
        assert "not valid UTF-8" in out
        assert "INVALID (3 errors)" in out


class TestFleetCommands:
    """The fleet/autopsy front ends over a scripted lease store."""

    FINGERPRINT = "fade" * 16

    def _scripted(self, tmp_path):
        import json as _json

        from repro.fabric.store import LeaseStore

        store = LeaseStore(tmp_path / "fab.db")
        campaign_id = store.create_campaign(
            self.FINGERPRINT, spec="slow-squares", params={}, items=2,
            chunksize=1,
        )
        store.log_worker_event(campaign_id, "w0", "worker_start")
        for index in range(2):
            lease = store.claim(campaign_id, "w0", ttl=30.0)
            store.commit(lease, "w0", payload=_json.dumps([index]))
        store.close()
        return tmp_path / "fab.db"

    def _telemetry_log(self, tmp_path):
        import json as _json

        from repro.fleet.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("commit_total", worker="w0").inc(2)
        log = tmp_path / "telemetry.jsonl"
        log.write_text(
            _json.dumps({"kind": "lease", "ts": 1.0, "event": "commit",
                         "index": 0, "worker": "w0"}) + "\n"
            + _json.dumps({"kind": "metrics", "ts": 2.0,
                           "snapshot": registry.snapshot()}) + "\n",
            encoding="utf-8",
        )
        return log

    def test_fabric_autopsy_passes_and_writes_html(self, tmp_path, capsys):
        db = self._scripted(tmp_path)
        html = tmp_path / "autopsy.html"
        code = main(["fabric", "autopsy", "--store", str(db),
                     "--html", str(html)])
        out = capsys.readouterr().out
        assert code == 0
        assert "autopsy PASSED" in out
        assert "chunk attribution" in out
        assert html.exists()

    def test_fabric_autopsy_json_and_campaign_prefix(self, tmp_path, capsys):
        db = self._scripted(tmp_path)
        code = main(["fabric", "autopsy", "--store", str(db),
                     "--campaign", self.FINGERPRINT[:6], "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["passed"] is True
        assert payload["attribution"] == {"0": ["w0", 1], "1": ["w0", 1]}

    def test_fleet_metrics_merges_snapshots(self, tmp_path, capsys):
        log = self._telemetry_log(tmp_path)
        prom = tmp_path / "merged.prom"
        code = main(["fleet", "metrics", str(log), "--prom", str(prom)])
        assert code == 0
        text = prom.read_text(encoding="utf-8")
        assert 'repro_commit_total{worker="w0"} 2' in text

    def test_fleet_metrics_without_snapshots_errors(self, tmp_path):
        log = tmp_path / "empty.jsonl"
        log.write_text('{"kind": "event", "ts": 1.0, "name": "x"}\n',
                       encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["fleet", "metrics", str(log)])

    def test_fleet_trace_writes_validated_chrome_trace(self, tmp_path, capsys):
        log = self._telemetry_log(tmp_path)
        out_path = tmp_path / "trace.json"
        code = main(["fleet", "trace", str(log), "--out", str(out_path)])
        assert code == 0
        trace = json.loads(out_path.read_text(encoding="utf-8"))
        from repro.monitor.chrome_trace import validate_chrome_trace

        assert validate_chrome_trace(trace) == []

    def test_fleet_board_reports_store_activity(self, tmp_path, capsys):
        db = self._scripted(tmp_path)
        code = main(["fleet", "board", "--store", str(db), "--plain",
                     "--idle-timeout", "0.5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        fleet = payload["board"]["fleet"]
        assert fleet["chunks_committed"] == 2
        assert fleet["workers"]["w0"]["commits"] == 2

    def test_obs_explain_fabric_after_autopsy_landing(self, tmp_path, capsys):
        db = self._scripted(tmp_path)
        obs_db = tmp_path / "obs.db"
        code = main(["fabric", "autopsy", "--store", str(db),
                     "--obs-db", str(obs_db)])
        capsys.readouterr()
        assert code == 0
        code = main(["obs", "explain", str(obs_db), "--run", "latest",
                     "--fabric"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fabric.chunks_committed" in out
        assert "Fabric aggregates" in out
