"""Tests for the deterministic randomness plumbing (repro.rng)."""

import random

import pytest

from repro import rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng.derive_seed(42, "a", 1) == rng.derive_seed(42, "a", 1)

    def test_distinct_tags_distinct_seeds(self):
        assert rng.derive_seed(42, "a") != rng.derive_seed(42, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert rng.derive_seed(1, "a") != rng.derive_seed(2, "a")

    def test_tag_path_not_concatenation_ambiguous(self):
        # ("ab",) and ("a", "b") must differ — the separator matters.
        assert rng.derive_seed(0, "ab") != rng.derive_seed(0, "a", "b")

    def test_negative_master_seed_allowed(self):
        assert isinstance(rng.derive_seed(-7, "x"), int)

    def test_seed_is_nonnegative_bounded(self):
        seed = rng.derive_seed(123, "y")
        assert 0 <= seed < 2**64

    def test_int_and_string_tags_distinct(self):
        assert rng.derive_seed(0, 1) != rng.derive_seed(0, "1")


class TestSpawn:
    def test_returns_random_instance(self):
        assert isinstance(rng.spawn(5, "t"), random.Random)

    def test_same_tags_same_stream(self):
        a = rng.spawn(5, "t")
        b = rng.spawn(5, "t")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_tags_different_stream(self):
        a = rng.spawn(5, "t1")
        b = rng.spawn(5, "t2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSpawnForNode:
    def test_per_node_streams_independent(self):
        a = rng.spawn_for_node(1, 0)
        b = rng.spawn_for_node(1, 1)
        assert a.random() != b.random()

    def test_reproducible(self):
        assert rng.spawn_for_node(9, "x").random() == rng.spawn_for_node(9, "x").random()


class TestSeedSequence:
    def test_length(self):
        assert len(list(rng.seed_sequence(3, 10, "tag"))) == 10

    def test_all_distinct(self):
        seeds = list(rng.seed_sequence(3, 100, "tag"))
        assert len(set(seeds)) == 100

    def test_prefix_stable(self):
        # Taking more reps never changes the earlier seeds.
        short = list(rng.seed_sequence(3, 5, "tag"))
        long = list(rng.seed_sequence(3, 50, "tag"))
        assert long[:5] == short

    def test_zero_count(self):
        assert list(rng.seed_sequence(3, 0)) == []


@pytest.mark.parametrize("master", [0, 1, -1, 2**70])
def test_derive_seed_handles_extreme_masters(master):
    assert isinstance(rng.derive_seed(master, "t"), int)
