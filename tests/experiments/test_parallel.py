"""Tests for the process-pool execution layer (:mod:`repro.parallel`).

The load-bearing property is *equivalence*: for any ``jobs`` value the
results are element-for-element what the serial loop produces, because
repetition seeds are derived order-independently.  The flagship
experiment tables are checked byte-for-byte here.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentConfig, repeat_runs, sweep
from repro.parallel import (
    default_chunksize,
    parallel_map,
    parallel_starmap,
    resolve_jobs,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _seed_echo(seed):
    return ("echo", seed)


def _point_sum(point, seeds):
    return (point, sum(seeds))


def _explode(x):
    raise ValueError(f"boom {x}")


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_all_cpus(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(-2)

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ExperimentError):
            resolve_jobs(None)

    def test_config_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert ExperimentConfig().effective_jobs() == 4
        assert ExperimentConfig(jobs=2).effective_jobs() == 2


class TestDefaultChunksize:
    def test_chunks_amortise_dispatch(self):
        # 100 items over 4 workers, 4 chunks each -> ceil(100/16) = 7.
        assert default_chunksize(100, 4) == 7

    def test_never_below_one(self):
        assert default_chunksize(1, 8) == 1
        assert default_chunksize(0, 8) == 1


class TestParallelMap:
    def test_matches_serial_and_preserves_order(self):
        items = list(range(50))
        serial = [_square(x) for x in items]
        assert parallel_map(_square, items, jobs=1) == serial
        assert parallel_map(_square, items, jobs=4) == serial

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_unpicklable_fn_falls_back_to_serial(self):
        seen = []

        def record(x):  # closure: unpicklable, must run in-process
            seen.append(x)
            return x

        with pytest.warns(RuntimeWarning, match="not picklable"):
            assert parallel_map(record, [1, 2, 3], jobs=4) == [1, 2, 3]
        assert seen == [1, 2, 3]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_explode, [1, 2, 3, 4], jobs=2)

    def test_starmap_matches_serial(self):
        tasks = [(a, a + 1) for a in range(20)]
        serial = [_add(a, b) for a, b in tasks]
        assert parallel_starmap(_add, tasks, jobs=1) == serial
        assert parallel_starmap(_add, tasks, jobs=3) == serial


class TestHarnessEquivalence:
    def test_repeat_runs_identical_across_jobs(self):
        serial = repeat_runs(
            ExperimentConfig(reps=12, master_seed=7, jobs=1), ("t",), _seed_echo
        )
        pooled = repeat_runs(
            ExperimentConfig(reps=12, master_seed=7, jobs=4), ("t",), _seed_echo
        )
        assert pooled == serial

    def test_sweep_identical_across_jobs(self):
        points = ["a", "b", "c"]
        serial = sweep(ExperimentConfig(reps=3, jobs=1), points, _point_sum)
        pooled = sweep(ExperimentConfig(reps=3, jobs=4), points, _point_sum)
        assert pooled == serial


class TestExperimentEquivalence:
    """Flagship tables must be byte-identical for jobs=1 and jobs=4."""

    def _render(self, run_table, **config_kwargs):
        return run_table(ExperimentConfig(**config_kwargs)).render()

    def test_exp_decay_table_identical(self):
        from repro.experiments.exp_decay import run_theorem1_table

        kwargs = dict(reps=8, master_seed=11, quick=True)
        serial = self._render(run_theorem1_table, jobs=1, **kwargs)
        pooled = self._render(run_theorem1_table, jobs=4, **kwargs)
        assert pooled == serial

    def test_exp_broadcast_table_identical(self):
        from repro.experiments.exp_broadcast import run_success_rate_table

        kwargs = dict(reps=8, master_seed=11, quick=True)
        serial = self._render(run_success_rate_table, jobs=1, **kwargs)
        pooled = self._render(run_success_rate_table, jobs=4, **kwargs)
        assert pooled == serial


def _square_batch(chunk):
    """A stand-in vectorized backend: whole-chunk squares in one call."""
    return [x * x for x in chunk]


class TestBackendJournalParity:
    """Satellite: journals are fingerprinted by ``fn`` alone, so the
    per-item path and the batched (vectorized-backend) path produce
    interchangeable, byte-identical journals and splices."""

    def test_fingerprint_ignores_batch_fn(self):
        from repro.parallel import CampaignJournal

        items = list(range(12))
        # The fingerprint is a function of (fn, items) only — there is
        # no batch_fn input to it at all; assert the journals agree.
        assert CampaignJournal.fingerprint(_square, items) == (
            CampaignJournal.fingerprint(_square, items)
        )

    def test_journal_bytes_identical_across_backends(self, tmp_path):
        import pickle

        from repro.parallel import resilient_map

        items = list(range(12))
        plain = resilient_map(
            _square, items, jobs=1, chunksize=3,
            journal=tmp_path / "plain.jsonl",
        )
        batched = resilient_map(
            _square, items, jobs=1, chunksize=3,
            journal=tmp_path / "batched.jsonl", batch_fn=_square_batch,
        )
        assert pickle.dumps(plain) == pickle.dumps(batched)
        assert (tmp_path / "plain.jsonl").read_bytes() == (
            tmp_path / "batched.jsonl"
        ).read_bytes()

    def test_journal_resumes_across_backends(self, tmp_path):
        import pickle

        from repro.parallel import resilient_map

        items = list(range(12))
        journal = tmp_path / "campaign.jsonl"
        full = resilient_map(
            _square, items, jobs=1, chunksize=3, journal=journal,
        )
        # Drop the last chunk, then resume under the *other* backend.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        resumed = resilient_map(
            _square, items, jobs=1, chunksize=3, journal=journal,
            resume=True, batch_fn=_square_batch,
        )
        assert pickle.dumps(resumed) == pickle.dumps(full)

    def test_fabric_store_payload_matches_journal_payload(self, tmp_path):
        # The lease store and the journal share encode_chunk, so a
        # chunk committed by a fabric worker is the same payload string
        # a journal append would have written.
        import json

        from repro.fabric.splice import encode_chunk
        from repro.parallel import resilient_map

        items = list(range(6))
        journal = tmp_path / "campaign.jsonl"
        resilient_map(_square, items, jobs=1, chunksize=3, journal=journal)
        records = [
            json.loads(line) for line in journal.read_text().splitlines()[1:]
        ]
        for record in records:
            start = record["index"] * 3
            chunk = items[start : start + 3]
            assert record["payload"] == encode_chunk([x * x for x in chunk])
