"""Smoke + claim tests for every experiment module (quick configs).

Each test runs an experiment at reduced scale and asserts the *paper's
claim column* — these double as end-to-end reproduction checks, while
the full-scale numbers live in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments.runner import ExperimentConfig


def quick(reps=10, seed=99):
    return ExperimentConfig(reps=reps, master_seed=seed, quick=True)


class TestE1Decay:
    def test_theorem1_claims(self):
        from repro.experiments.exp_decay import run_theorem1_table

        table = run_theorem1_table(quick(reps=80))
        assert len(table) > 0
        assert all(table.column("claim_ii_holds"))
        assert all(table.column("claim_i_holds"))
        # Monte-Carlo agrees with the exact DP within the Wilson band.
        for exact, lo, hi in zip(
            table.column("P_exact"), table.column("mc_lo"), table.column("mc_hi")
        ):
            assert lo - 0.05 <= exact <= hi + 0.05


class TestE2E3Broadcast:
    def test_completion_times_and_bound(self):
        from repro.experiments.exp_broadcast import run_broadcast_time_table

        table = run_broadcast_time_table(quick(reps=8))
        assert len(table) > 0
        for frac, required in zip(
            table.column("within_bound_frac"), table.column("required_frac")
        ):
            assert frac >= required

    def test_success_rates(self):
        from repro.experiments.exp_broadcast import run_success_rate_table

        table = run_success_rate_table(quick(reps=25))
        assert all(table.column("claim_holds"))

    def test_diameter_scaling_roughly_linear(self):
        from repro.experiments.exp_broadcast import run_diameter_scaling_table

        table = run_diameter_scaling_table(quick(reps=6))
        per_d = table.column("slots_per_D")
        # Slots per unit diameter must stabilise (not blow up with depth).
        assert max(per_d) <= 4 * min(per_d)


class TestE4Hitting:
    def test_adversary_beats_all_strategies(self):
        from repro.experiments.exp_hitting import run_adversary_table

        table = run_adversary_table(quick())
        assert all(table.column("S_nonempty"))
        assert all(table.column("survived_all"))
        assert all(table.column("replay_consistent"))

    def test_protocol_lower_bound(self):
        from repro.experiments.exp_hitting import run_protocol_lower_bound_table

        table = run_protocol_lower_bound_table(quick())
        assert all(table.column("claim_holds"))

    def test_upper_bounds(self):
        from repro.experiments.exp_hitting import run_upper_bound_table

        table = run_upper_bound_table(quick())
        assert all(table.column("sweep_le_n"))
        assert all(table.column("rr_le_n"))


class TestE2cUpperBound:
    def test_polynomial_n_costs_constant(self):
        from repro.experiments.exp_broadcast import run_upper_bound_sensitivity_table

        table = run_upper_bound_sensitivity_table(quick(reps=8))
        assert all(rate >= 0.8 for rate in table.column("success_rate"))
        assert all(s <= 3.0 for s in table.column("slowdown"))


class TestE4dExhaustive:
    def test_theorem12_exhaustively(self):
        from repro.experiments.exp_exhaustive import run_exhaustive_table

        table = run_exhaustive_table(quick(reps=5))
        assert all(table.column("thm12_holds"))


class TestE9bMobility:
    def test_mobile_broadcast(self):
        from repro.experiments.exp_dynamic import run_mobility_table

        table = run_mobility_table(quick(reps=6))
        assert all(table.column("claim_holds"))


class TestE5Gap:
    def test_gap_widens_with_n(self):
        from repro.experiments.exp_gap import gap_growth_fits, run_gap_table

        table = run_gap_table(quick(reps=6))
        ratios = table.column("gap_rr_over_rand")
        assert ratios[-1] > ratios[0]  # the gap grows
        assert ratios[-1] > 2.0
        fits = gap_growth_fits(table)
        # Deterministic curves grow linearly (healthy slope, good fit);
        # the randomized curve's linear slope is tiny by comparison.
        assert fits["round_robin_vs_n"]["slope"] > 0.5
        assert fits["round_robin_vs_n"]["r_squared"] > 0.9
        assert (
            fits["randomized_vs_n"]["slope"]
            < fits["round_robin_vs_n"]["slope"] / 4
        )


class TestE6BFS:
    def test_bfs_claims(self):
        from repro.experiments.exp_bfs import run_bfs_table

        table = run_bfs_table(quick(reps=10))
        assert all(table.column("claim_holds"))


class TestE7Messages:
    def test_message_bound(self):
        from repro.experiments.exp_messages import run_message_complexity_table

        table = run_message_complexity_table(quick(reps=5))
        assert all(table.column("mean_within_bound"))
        # Expected per-(informed node, phase) transmissions are < 2
        # (allow Monte-Carlo slack on the sample mean).
        assert all(v <= 2.1 for v in table.column("mean_tx_per_node_phase"))


class TestE8CoinBias:
    def test_half_near_optimal(self):
        from repro.experiments.exp_coin_bias import run_coin_bias_table

        table = run_coin_bias_table(quick(reps=6))
        biases = table.column("p_continue")
        receptions = table.column("P_k_d")
        by_bias = dict(zip(biases, receptions))
        # p = 1/2 at least matches the extremes by a wide margin.
        assert by_bias[0.5] >= max(by_bias[min(biases)], by_bias[max(biases)])

    def test_alignment_ablation_runs(self):
        from repro.experiments.exp_coin_bias import run_alignment_table

        table = run_alignment_table(quick(reps=6))
        assert len(table) == 2
        assert all(rate > 0.5 for rate in table.column("success_rate"))


class TestE9Dynamic:
    def test_fault_resilience(self):
        from repro.experiments.exp_dynamic import run_dynamic_table

        table = run_dynamic_table(quick(reps=10))
        assert all(table.column("claim_holds"))


class TestE9cTransientFaults:
    def test_transient_fault_resilience(self):
        from repro.experiments.exp_dynamic import run_transient_fault_table

        table = run_transient_fault_table(quick(reps=8))
        assert all(table.column("claim_holds"))
        # Quick mode keeps the bracketing arms: baseline and all-faults.
        assert [r[0] for r in table.rows] == ["none (baseline)", "all of the above"]


class TestE10CD:
    def test_cn_four_slots(self):
        from repro.experiments.exp_cd import run_cd_cn_table

        table = run_cd_cn_table(quick())
        assert all(table.column("claim_holds"))
        assert all(w <= 4 for w in table.column("worst_slots"))

    def test_tree_splitting(self):
        from repro.experiments.exp_cd import run_tree_splitting_table

        table = run_tree_splitting_table(quick())
        assert all(table.column("all_resolved"))
        slots = table.column("engine_slots")
        assert slots == sorted(slots)  # more contenders, more slots


class TestE11DFS:
    def test_dfs_2n_bound(self):
        from repro.experiments.exp_dfs import run_dfs_table

        table = run_dfs_table(quick())
        assert all(table.column("claim_holds"))

    def test_deterministic_comparison(self):
        from repro.experiments.exp_dfs import run_deterministic_comparison_table

        table = run_deterministic_comparison_table(quick())
        assert len(table) > 0
        for greedy, tree in zip(
            table.column("greedy_schedule"), table.column("tree_schedule")
        ):
            assert greedy <= tree + 1  # centralized greedy never much worse


class TestE12Spontaneous:
    def test_three_round_protocol(self):
        from repro.experiments.exp_spontaneous import run_three_round_table

        table = run_three_round_table(quick())
        assert all(table.column("always_informed"))
        assert all(w <= 3 for w in table.column("worst_slots"))

    def test_c_star_gap_persists(self):
        from repro.experiments.exp_spontaneous import run_c_star_table

        table = run_c_star_table(quick(reps=5))
        gaps = table.column("gap")
        assert gaps[-1] > 1.0
