"""Tests for the report assembler."""

import pathlib

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import CLAIMS, build_report, discover_results


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "e1_decay.txt").write_text("E1 table\nrow\n")
    (tmp_path / "e5_gap.txt").write_text("E5 table\nrow\n")
    (tmp_path / "mystery.txt").write_text("???\n")
    return tmp_path


class TestDiscover:
    def test_known_results_in_canonical_order(self, results_dir):
        sections = discover_results(results_dir)
        names = [s.name for s in sections]
        assert names.index("e1_decay") < names.index("e5_gap")

    def test_unknown_results_appended(self, results_dir):
        sections = discover_results(results_dir)
        assert sections[-1].name == "mystery"
        assert sections[-1].claim == "(unmapped result)"

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ExperimentError):
            discover_results(tmp_path / "nope")


class TestBuildReport:
    def test_contains_tables_and_claims(self, results_dir):
        text = build_report(results_dir)
        assert "E1 table" in text
        assert "Theorem 1" in text
        assert "Corollary 13" in text
        assert text.startswith("# Reproduction report")

    def test_custom_title(self, results_dir):
        text = build_report(results_dir, title="# Custom")
        assert text.startswith("# Custom")

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            build_report(tmp_path)

    def test_real_results_if_present(self):
        real = pathlib.Path(__file__).parents[2] / "benchmarks" / "results"
        if not real.is_dir():
            pytest.skip("no benchmark results yet")
        text = build_report(real)
        assert "e5_gap" in text


def test_claims_cover_every_bench_output():
    # Every emit() name used by the benchmarks must have a claim entry,
    # so the report never shows "(unmapped result)" for our own files.
    bench_dir = pathlib.Path(__file__).parents[2] / "benchmarks"
    import re

    emitted = set()
    for path in bench_dir.glob("bench_*.py"):
        emitted |= set(re.findall(r'emit\(\s*"([^"]+)"', path.read_text()))
    missing = emitted - set(CLAIMS)
    assert not missing, f"add CLAIMS entries for: {sorted(missing)}"


def test_cli_report_command(results_dir, capsys):
    from repro.cli import main

    code = main(["report", "--results-dir", str(results_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "E5 table" in out


def test_cli_report_to_file(results_dir, tmp_path):
    from repro.cli import main

    target = tmp_path / "REPORT.md"
    code = main(["report", "--results-dir", str(results_dir), "--output", str(target)])
    assert code == 0
    assert "E1 table" in target.read_text()
