"""Tests for the experiment harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentConfig, repeat_runs, sweep


class TestConfig:
    def test_seeds_deterministic(self):
        cfg = ExperimentConfig(reps=5, master_seed=1)
        assert cfg.seeds("x") == cfg.seeds("x")

    def test_seeds_differ_per_tag(self):
        cfg = ExperimentConfig(reps=5, master_seed=1)
        assert cfg.seeds("x") != cfg.seeds("y")

    def test_seeds_differ_per_master(self):
        assert (
            ExperimentConfig(reps=3, master_seed=1).seeds("x")
            != ExperimentConfig(reps=3, master_seed=2).seeds("x")
        )

    def test_reps_length(self):
        assert len(ExperimentConfig(reps=7).seeds("t")) == 7


class TestRepeatRuns:
    def test_calls_once_per_seed(self):
        cfg = ExperimentConfig(reps=4)
        seen = []
        repeat_runs(cfg, ("tag",), lambda seed: seen.append(seed))
        assert len(seen) == 4
        assert len(set(seen)) == 4

    def test_rejects_zero_reps(self):
        cfg = ExperimentConfig(reps=0)
        with pytest.raises(ExperimentError):
            repeat_runs(cfg, ("t",), lambda s: s)


class TestSweep:
    def test_point_order_does_not_change_seeds(self):
        cfg = ExperimentConfig(reps=2)
        collected = {}

        def run_point(point, seeds):
            collected[point] = list(seeds)

        sweep(cfg, [1, 2, 3], run_point)
        forward = dict(collected)
        collected.clear()
        sweep(cfg, [3, 1, 2], run_point)
        assert collected == forward

    def test_results_in_point_order(self):
        cfg = ExperimentConfig(reps=1)
        results = sweep(cfg, ["a", "b"], lambda p, s: p.upper())
        assert results == ["A", "B"]
