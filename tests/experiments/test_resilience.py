"""Tests for the hardened campaign layer (:mod:`repro.parallel`).

Covers the three resilience mechanisms — worker-death retry with
backoff, per-task timeouts, and the chunk-level campaign journal — and
the load-bearing guarantee behind all of them: whatever infrastructure
failures occur, the final result list is exactly what the serial loop
would have produced.
"""

import json
import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.parallel import (
    CampaignJournal,
    backoff_delay,
    parallel_map,
    resilient_map,
    resilient_starmap,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _kill_worker_once(task):
    """SIGKILL the worker the first time the flagged item is seen."""
    x, flag = task
    if flag and not os.path.exists(flag):
        Path(flag).touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _die_in_any_worker(task):
    """SIGKILL every worker process; only runs to completion in-process."""
    x, main_pid = task
    if os.getpid() != main_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang_once(task):
    x, flag = task
    if not os.path.exists(flag):
        Path(flag).touch()
        time.sleep(60)
    return x * x


def _hang_forever(x):
    time.sleep(60)


def _record_square(task):
    x, log = task
    with open(log, "a", encoding="utf-8") as stream:
        stream.write(f"{x}\n")
    return x * x


class TestResilientMapBasics:
    def test_matches_serial_across_jobs(self):
        items = list(range(25))
        serial = [_square(x) for x in items]
        assert resilient_map(_square, items, jobs=1) == serial
        assert resilient_map(_square, items, jobs=4) == serial

    def test_empty_items(self):
        assert resilient_map(_square, [], jobs=4) == []

    def test_starmap_matches_serial(self):
        tasks = [(a, a + 1) for a in range(12)]
        serial = [_add(a, b) for a, b in tasks]
        assert resilient_starmap(_add, tasks, jobs=3) == serial

    def test_fn_exceptions_propagate_not_retried(self):
        def boom(x):
            raise ValueError(f"boom {x}")

        with pytest.raises(ValueError, match="boom"):
            resilient_map(boom, [1, 2], jobs=1)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ExperimentError, match="task_timeout"):
            resilient_map(_square, [1], jobs=1, task_timeout=0)
        with pytest.raises(ExperimentError, match="max_retries"):
            resilient_map(_square, [1], jobs=1, max_retries=-1)

    def test_unpicklable_fallback_warns(self):
        def local(x):  # closure: unpicklable
            return x + 1

        with pytest.warns(RuntimeWarning, match="not picklable"):
            assert resilient_map(local, [1, 2], jobs=2) == [2, 3]

    def test_parallel_map_fallback_warns_too(self):
        def local(x):
            return x + 1

        with pytest.warns(RuntimeWarning, match="not picklable"):
            assert parallel_map(local, [1, 2], jobs=2) == [2, 3]


class TestWorkerDeathRetry:
    def test_killed_worker_retried_to_identical_results(self, tmp_path):
        # One poison task SIGKILLs its worker on first execution; the
        # retry recomputes from re-derived inputs, so the final table is
        # byte-identical to the serial run.
        flag = tmp_path / "killed-once"
        items = [(x, str(flag) if x == 5 else "") for x in range(10)]
        expected = [x * x for x in range(10)]
        got = resilient_map(
            _kill_worker_once, items, jobs=2, chunksize=2, backoff_base=0.01
        )
        assert got == expected
        assert pickle.dumps(got) == pickle.dumps(expected)
        assert flag.exists()  # the kill really happened

    def test_persistent_killer_falls_back_in_process(self):
        # Every pool attempt dies; after max_retries the blamed chunk
        # runs in-process, where the task completes normally.
        items = [(x, os.getpid()) for x in range(4)]
        got = resilient_map(
            _die_in_any_worker,
            items,
            jobs=2,
            chunksize=4,
            max_retries=1,
            backoff_base=0.01,
        )
        assert got == [x * x for x in range(4)]


class TestTaskTimeout:
    def test_hung_chunk_retried(self, tmp_path):
        flag = tmp_path / "hung-once"
        items = [(x, str(flag)) for x in range(2)]
        got = resilient_map(
            _hang_once,
            items,
            jobs=2,
            chunksize=2,
            task_timeout=0.5,
            backoff_base=0.01,
        )
        assert got == [0, 1]
        assert flag.exists()

    def test_persistent_hang_aborts_with_clear_error(self):
        # Two items: a single item would clamp jobs to 1 and take the
        # serial path, where timeouts don't apply.
        with pytest.raises(ExperimentError, match="timed out"):
            resilient_map(
                _hang_forever,
                [1, 2],
                jobs=2,
                chunksize=1,
                task_timeout=0.25,
                max_retries=0,
            )


class TestCampaignJournal:
    def _items(self, tmp_path, name="calls.txt"):
        log = tmp_path / name
        return [(x, str(log)) for x in range(8)], log

    def test_journal_written_and_complete_resume_recomputes_nothing(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        items, log = self._items(tmp_path)
        full = resilient_map(_record_square, items, jobs=1, chunksize=2, journal=journal)
        assert journal.exists()
        log.write_text("")
        resumed = resilient_map(
            _record_square, items, jobs=1, chunksize=2, journal=journal, resume=True
        )
        assert resumed == full
        assert log.read_text() == ""  # every chunk came from the journal

    def test_truncated_journal_resumes_byte_identically(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        items, log = self._items(tmp_path)
        full = resilient_map(_record_square, items, jobs=1, chunksize=2, journal=journal)
        # Simulate a kill: drop the last completed chunk record.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        log.write_text("")
        resumed = resilient_map(
            _record_square, items, jobs=1, chunksize=2, journal=journal, resume=True
        )
        assert pickle.dumps(resumed) == pickle.dumps(full)
        # Exactly the one missing chunk (2 items) was recomputed.
        assert len(log.read_text().splitlines()) == 2

    def test_resume_adopts_recorded_chunk_geometry(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        items, log = self._items(tmp_path)
        full = resilient_map(_record_square, items, jobs=1, chunksize=2, journal=journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        log.write_text("")
        # A different requested chunksize must not shift chunk indices:
        # the header's geometry wins, keeping the splice exact.
        resumed = resilient_map(
            _record_square, items, jobs=1, chunksize=5, journal=journal, resume=True
        )
        assert resumed == full
        assert len(log.read_text().splitlines()) == 2

    def test_torn_trailing_line_ignored(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        items, _ = self._items(tmp_path)
        full = resilient_map(_record_square, items, jobs=1, chunksize=2, journal=journal)
        with journal.open("a", encoding="utf-8") as stream:
            stream.write('{"kind": "chu')  # torn write mid-record
        resumed = resilient_map(
            _record_square, items, jobs=1, chunksize=2, journal=journal, resume=True
        )
        assert resumed == full

    def test_resume_rejects_different_campaign(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        resilient_map(_square, [1, 2, 3], jobs=1, journal=journal)
        with pytest.raises(ExperimentError, match="different campaign"):
            resilient_map(_square, [1, 2, 3, 4], jobs=1, journal=journal, resume=True)

    def test_resume_without_existing_file_starts_fresh(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        got = resilient_map(_square, [1, 2, 3], jobs=1, journal=journal, resume=True)
        assert got == [1, 4, 9]
        assert journal.exists()

    def test_fingerprint_distinguishes_fn_and_items(self):
        assert CampaignJournal.fingerprint(_square, [1, 2]) != CampaignJournal.fingerprint(
            _square, [1, 3]
        )
        assert CampaignJournal.fingerprint(_square, [1, 2]) != CampaignJournal.fingerprint(
            _add, [1, 2]
        )

    def test_pooled_run_with_journal_matches_serial(self, tmp_path):
        items = list(range(20))
        serial = [_square(x) for x in items]
        got = resilient_map(
            _square, items, jobs=4, journal=tmp_path / "pooled.jsonl"
        )
        assert got == serial


def _write_pid_and_hang(task):
    x, directory = task
    Path(directory, f"{os.getpid()}.pid").touch()
    time.sleep(60)
    return x


class TestTornJournalRecovery:
    """Satellite: the journal tolerates a torn final line the way
    ``monitor.tail`` does — truncate the debris and resume."""

    def _write_full(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        items = list(range(8))
        full = resilient_map(_square, items, jobs=1, chunksize=2, journal=journal)
        return journal, items, full

    def test_journal_sliced_mid_byte_resumes_byte_identically(self, tmp_path):
        journal, items, full = self._write_full(tmp_path)
        data = journal.read_bytes()
        # Slice mid-way through the final record: a crash mid-append.
        journal.write_bytes(data[: len(data) - 7])
        resumed = resilient_map(
            _square, items, jobs=1, chunksize=2, journal=journal, resume=True
        )
        assert pickle.dumps(resumed) == pickle.dumps(full)

    def test_every_slice_point_recovers(self, tmp_path):
        # Whatever byte the crash landed on, resume must succeed: the
        # torn suffix only ever claims the final (incomplete) record.
        journal, items, full = self._write_full(tmp_path)
        data = journal.read_bytes()
        header_end = data.index(b"\n") + 1
        for cut in range(header_end, len(data)):
            journal.write_bytes(data[:cut])
            resumed = resilient_map(
                _square, items, jobs=1, chunksize=2, journal=journal, resume=True
            )
            assert resumed == full, f"slice at byte {cut} broke resume"

    def test_appends_after_torn_tail_land_on_clean_lines(self, tmp_path):
        # The bug this guards against: appending to a file whose last
        # line is torn *concatenates* onto the debris, corrupting the
        # next record too.  The load must truncate first.
        journal, items, full = self._write_full(tmp_path)
        data = journal.read_bytes()
        journal.write_bytes(data[: len(data) - 7])
        resilient_map(
            _square, items, jobs=1, chunksize=2, journal=journal, resume=True
        )
        for line in journal.read_bytes().splitlines():
            json.loads(line)  # every line is whole again

    def test_midfile_corruption_refuses_to_guess(self, tmp_path):
        journal, items, _ = self._write_full(tmp_path)
        lines = journal.read_text().splitlines()
        lines[2] = lines[2][:-5]  # torn record with complete ones after it
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError, match="corrupt at line 3"):
            resilient_map(
                _square, items, jobs=1, chunksize=2, journal=journal, resume=True
            )


class TestBackoffDelay:
    """Satellite: retry backoff uses seeded deterministic jitter."""

    def test_deterministic(self):
        assert backoff_delay(0.1, 3, chunk_index=7) == backoff_delay(
            0.1, 3, chunk_index=7
        )

    def test_exponential_envelope_with_jitter(self):
        for attempt in (1, 2, 3, 4):
            for chunk in range(8):
                delay = backoff_delay(0.1, attempt, chunk_index=chunk)
                nominal = 0.1 * 2 ** (attempt - 1)
                assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_jitter_varies_across_chunks_and_attempts(self):
        delays = {backoff_delay(0.1, 2, chunk_index=c) for c in range(16)}
        assert len(delays) > 1
        assert backoff_delay(0.1, 1, chunk_index=0) != backoff_delay(
            0.1, 2, chunk_index=0
        ) / 2  # jitter is re-drawn per attempt, not scaled

    def test_zeroth_attempt_is_immediate(self):
        assert backoff_delay(0.1, 0) == 0.0


class TestKeyboardInterruptCleanup:
    """Satellite: ^C mid-campaign re-raises promptly and leaves no
    orphaned pool children computing in the background."""

    @staticmethod
    def _alive(pid):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        try:  # a zombie is dead enough: it computes nothing
            with open(f"/proc/{pid}/stat", encoding="ascii") as stream:
                state = stream.read().rsplit(")", 1)[1].split()[0]
            return state != "Z"
        except OSError:
            return False

    def test_interrupt_terminates_pool_children(self, tmp_path):
        import threading

        pid_dir = tmp_path / "pids"
        pid_dir.mkdir()

        def interrupter():
            deadline = time.time() + 20
            while time.time() < deadline:
                if len(list(pid_dir.glob("*.pid"))) >= 2:
                    break
                time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGINT)

        threading.Thread(target=interrupter, daemon=True).start()
        items = [(x, str(pid_dir)) for x in range(4)]
        started = time.time()
        with pytest.raises(KeyboardInterrupt):
            resilient_map(_write_pid_and_hang, items, jobs=2, chunksize=1)
        assert time.time() - started < 30  # re-raised promptly, no hang

        pids = [int(path.stem) for path in pid_dir.glob("*.pid")]
        assert len(pids) >= 2
        deadline = time.time() + 10
        while time.time() < deadline and any(self._alive(p) for p in pids):
            time.sleep(0.1)
        survivors = [p for p in pids if self._alive(p)]
        assert not survivors, f"orphaned pool children: {survivors}"
