"""Webhook delivery: retries, the dead-letter journal, and its drain."""

import asyncio
import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.errors import ExperimentError
from repro.tower.webhooks import WebhookDispatcher


class _Receiver:
    """A stdlib HTTP receiver capturing POST bodies on a background thread."""

    def __init__(self, port=0, status=200):
        captured = self.captured = []

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                captured.append(json.loads(self.rfile.read(length)))
                self.send_response(status)
                self.send_header("Content-Length", "0")
                self.end_headers()

            def log_message(self, *args):
                pass

        self.server = HTTPServer(("127.0.0.1", port), Handler)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}/hook"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


def free_port():
    """A port with no listener (reserved briefly, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestDelivery:
    def test_alert_posted_to_every_url(self):
        first, second = _Receiver(), _Receiver()
        try:

            async def main():
                dispatcher = WebhookDispatcher([first.url, second.url])
                dispatcher.start()
                dispatcher.submit(7, {"kind": "alert", "rule": "slo"})
                await dispatcher.stop(flush_timeout=10)
                return dispatcher

            dispatcher = asyncio.run(main())
            assert dispatcher.delivered == 2
            assert dispatcher.failed == 0
            assert first.captured == [{"kind": "alert", "rule": "slo"}]
            assert second.captured == [{"kind": "alert", "rule": "slo"}]
        finally:
            first.close()
            second.close()

    def test_non_2xx_retries_then_dead_letters(self, tmp_path):
        receiver = _Receiver(status=500)
        journal = tmp_path / "dead.jsonl"
        try:

            async def main():
                dispatcher = WebhookDispatcher(
                    [receiver.url],
                    dead_letter=journal,
                    attempts=2,
                    base_delay=0.01,
                )
                dispatcher.start()
                dispatcher.submit(1, {"kind": "alert", "rule": "slo"})
                await dispatcher.stop(flush_timeout=10)
                return dispatcher

            dispatcher = asyncio.run(main())
            assert dispatcher.failed == 1
            assert len(receiver.captured) == 2  # both attempts hit the wire
            entries = [
                json.loads(line)
                for line in journal.read_text().splitlines()
            ]
            assert len(entries) == 1
            assert entries[0]["error"] == "HTTP 500"
            assert entries[0]["record"]["rule"] == "slo"
        finally:
            receiver.close()

    def test_non_http_url_rejected(self):
        with pytest.raises(ExperimentError):
            WebhookDispatcher(["https://example.com/hook"])
        with pytest.raises(ExperimentError):
            WebhookDispatcher(["not a url"])


class TestDeadLetterDrain:
    def test_unreachable_receiver_journals_then_drains(self, tmp_path):
        """A receiver outage dead-letters the alert; once the receiver is
        back, one drain redelivers it and empties the journal."""
        port = free_port()
        journal = tmp_path / "dead.jsonl"

        async def deliver():
            dispatcher = WebhookDispatcher(
                [f"http://127.0.0.1:{port}/hook"],
                dead_letter=journal,
                attempts=2,
                base_delay=0.01,
                timeout=2.0,
            )
            dispatcher.start()
            dispatcher.submit(3, {"kind": "alert", "rule": "fleet-takeover"})
            await dispatcher.stop(flush_timeout=10)
            return dispatcher.failed

        assert asyncio.run(deliver()) == 1
        assert len(journal.read_text().splitlines()) == 1

        receiver = _Receiver(port=port)
        try:

            async def drain():
                dispatcher = WebhookDispatcher([], dead_letter=journal)
                return await dispatcher.drain_dead_letters()

            outcome = asyncio.run(drain())
            assert outcome == {"redelivered": 1, "remaining": 0}
            assert journal.read_text() == ""
            assert receiver.captured[0]["rule"] == "fleet-takeover"
        finally:
            receiver.close()

    def test_drain_keeps_what_still_fails(self, tmp_path):
        journal = tmp_path / "dead.jsonl"
        dead_port = free_port()
        journal.write_text(
            json.dumps(
                {
                    "url": f"http://127.0.0.1:{dead_port}/hook",
                    "seq": 1,
                    "record": {"kind": "alert", "rule": "x"},
                    "error": "ConnectionRefusedError",
                    "attempts": 3,
                }
            )
            + "\n"
        )

        async def drain():
            dispatcher = WebhookDispatcher(
                [], dead_letter=journal, timeout=2.0
            )
            return await dispatcher.drain_dead_letters()

        outcome = asyncio.run(drain())
        assert outcome == {"redelivered": 0, "remaining": 1}
        assert len(journal.read_text().splitlines()) == 1

    def test_drain_without_journal_is_a_noop(self, tmp_path):
        async def drain():
            dispatcher = WebhookDispatcher([])
            return await dispatcher.drain_dead_letters()

        assert asyncio.run(drain()) == {"redelivered": 0, "remaining": 0}
