"""The tower over real sockets: SSE streams, resume, endpoints, drain."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.telemetry import Telemetry
from repro.tower import TowerConfig, TowerThread


def http_get(port, path):
    """(status, body bytes) — 4xx/5xx returned, not raised."""
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def sse_connect(port, path="/stream", headers=None):
    """An open socket with the request sent and the preamble consumed."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    head = f"GET {path} HTTP/1.1\r\nHost: tower\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    sock.sendall((head + "\r\n").encode())
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        buffer += sock.recv(4096)
    assert b"200 OK" in buffer
    assert b"text/event-stream" in buffer
    return sock, buffer.split(b"\r\n\r\n", 1)[1]


def read_frames(sock, initial=b"", *, until=None, timeout=10.0):
    """Parse SSE frames off ``sock`` until ``until(frames)`` or timeout.

    Frames are ``{"id": int | None, "event": str, "data": dict}``.
    """
    sock.settimeout(0.2)
    deadline = time.monotonic() + timeout
    buffer = initial
    frames = []

    def drain_buffer():
        nonlocal buffer
        while b"\n\n" in buffer:
            raw, buffer = buffer.split(b"\n\n", 1)
            frame = {"id": None, "event": None, "data": None}
            for line in raw.decode().splitlines():
                if line.startswith("id: "):
                    frame["id"] = int(line[4:])
                elif line.startswith("event: "):
                    frame["event"] = line[7:]
                elif line.startswith("data: "):
                    frame["data"] = json.loads(line[6:])
            if frame["event"] is not None:  # skip keepalive comments
                frames.append(frame)

    while time.monotonic() < deadline:
        drain_buffer()
        if until is not None and until(frames):
            return frames
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            continue
        if not chunk:
            drain_buffer()
            return frames
        buffer += chunk
    return frames


@pytest.fixture()
def tower_with_recorder():
    recorder = Telemetry.buffered()
    recorder.__enter__()
    thread = TowerThread(
        TowerConfig(recorder=recorder, queue_size=8, heartbeat=30.0)
    )
    port = thread.start()
    yield port, recorder
    thread.stop()
    recorder.__exit__(None, None, None)


class TestSlowConsumer:
    def test_stalled_client_never_blocks_bus_or_other_clients(
        self, tower_with_recorder
    ):
        port, recorder = tower_with_recorder
        stalled, _ = sse_connect(port)  # connected, never read again
        healthy, healthy_initial = sse_connect(port)
        # Wait until both subscriptions are registered.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            _status, body = http_get(port, "/metrics")
            if b"repro_tower_clients_connected 2" in body:
                break
            time.sleep(0.05)

        collected = []
        reader = threading.Thread(
            target=lambda: collected.extend(
                read_frames(
                    healthy,
                    healthy_initial,
                    until=lambda fs: any(
                        f["data"].get("n") == "sentinel" for f in fs
                    ),
                    timeout=20.0,
                )
            )
        )
        reader.start()

        # A burst far past the stalled client's queue + TCP buffers.
        # The emitting side must complete promptly: publishing is
        # drop-and-count, never backpressure into the recorder bus.
        started = time.perf_counter()
        for n in range(2000):
            recorder.emit("event", n=n, pad="x" * 200)
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0
        time.sleep(0.3)  # let queues drain so the sentinel can't drop
        recorder.emit("event", n="sentinel")
        reader.join(timeout=20)
        assert not reader.is_alive()
        assert any(f["data"].get("n") == "sentinel" for f in collected)

        # The stalled client's losses are counted on /metrics.
        _status, body = http_get(port, "/metrics")
        dropped = [
            line
            for line in body.decode().splitlines()
            if line.startswith("repro_tower_dropped_slow_consumer_total")
        ]
        assert dropped and float(dropped[0].split()[-1]) > 0

        # When the stalled client finally reads, the loss is announced
        # in-stream as a gap frame, never papered over.
        recorder.emit("event", n="post-gap")
        frames = read_frames(
            stalled,
            until=lambda fs: any(f["event"] == "gap" for f in fs),
            timeout=10.0,
        )
        gaps = [f for f in frames if f["event"] == "gap"]
        assert gaps and gaps[0]["data"]["dropped"] > 0
        stalled.close()
        healthy.close()

    def test_stream_kind_filter(self, tower_with_recorder):
        port, recorder = tower_with_recorder
        sock, initial = sse_connect(port, "/stream?kinds=alert")
        time.sleep(0.2)
        recorder.emit("event", n=1)
        recorder.emit("alert", rule="slo", severity="warning", message="x")
        frames = read_frames(
            sock, initial, until=lambda fs: len(fs) >= 1, timeout=10.0
        )
        assert [f["event"] for f in frames] == ["alert"]
        sock.close()


class TestResumeOnLiveLog:
    def test_last_event_id_reconnect_no_duplication(self, tmp_path):
        """A client that disconnects mid-campaign and reconnects with
        Last-Event-ID sees every later record exactly once."""
        logdir = tmp_path / "logs"
        logdir.mkdir()
        thread = TowerThread(
            TowerConfig(follow=[logdir], poll_interval=0.05, heartbeat=30.0)
        )
        port = thread.start()
        try:
            first, initial = sse_connect(port)
            log = logdir / "worker.jsonl"
            with log.open("w", encoding="utf-8") as stream:
                for n in range(5):
                    stream.write(json.dumps({"kind": "event", "n": n}) + "\n")
            frames = read_frames(
                first, initial, until=lambda fs: len(fs) >= 5, timeout=10.0
            )
            assert [f["data"]["n"] for f in frames] == [0, 1, 2, 3, 4]
            last_id = frames[-1]["id"]
            first.close()  # client goes away mid-campaign

            with log.open("a", encoding="utf-8") as stream:
                for n in range(5, 10):
                    stream.write(json.dumps({"kind": "event", "n": n}) + "\n")
            time.sleep(0.3)  # the tower keeps following; client is gone

            second, initial = sse_connect(
                port, headers={"Last-Event-ID": str(last_id)}
            )
            frames = read_frames(
                second, initial, until=lambda fs: len(fs) >= 5, timeout=10.0
            )
            # Exactly the records after last_id: no duplicates, no holes,
            # no gap frame (the ring still held everything).
            assert [f["event"] for f in frames] == ["event"] * 5
            assert [f["data"]["n"] for f in frames] == [5, 6, 7, 8, 9]
            assert [f["id"] for f in frames] == list(
                range(last_id + 1, last_id + 6)
            )
            second.close()
        finally:
            thread.stop()

    def test_malformed_last_event_id_streams_from_now(self, tmp_path):
        thread = TowerThread(TowerConfig(heartbeat=30.0))
        port = thread.start()
        try:
            sock, initial = sse_connect(
                port, headers={"Last-Event-ID": "not-a-number"}
            )
            # Connection established; nothing replayed, nothing torn.
            frames = read_frames(sock, initial, timeout=0.5)
            assert frames == []
            sock.close()
        finally:
            thread.stop()


class TestEndpoints:
    @pytest.fixture()
    def tower(self, tmp_path):
        thread = TowerThread(
            TowerConfig(obs_db=tmp_path / "runs.db", heartbeat=30.0)
        )
        port = thread.start()
        yield port
        thread.stop()

    def test_index_lists_routes(self, tower):
        status, body = http_get(tower, "/")
        assert status == 200
        payload = json.loads(body)
        assert "/stream" in payload["endpoints"]

    def test_health_and_readiness(self, tower):
        assert http_get(tower, "/healthz")[0] == 200
        assert http_get(tower, "/readyz")[0] == 200

    def test_unknown_route_404(self, tower):
        assert http_get(tower, "/nope")[0] == 404

    def test_trend_requires_metric(self, tower):
        status, body = http_get(tower, "/trend")
        assert status == 400
        assert b"metric" in body

    def test_trend_unknown_source_400(self, tower):
        status, _body = http_get(tower, "/trend?metric=slots_per_sec&source=nope")
        assert status == 400

    def test_runs_on_empty_store(self, tower):
        status, body = http_get(tower, "/runs")
        assert status == 200
        assert json.loads(body) == {"count": 0, "runs": []}

    def test_run_detail_unknown_selector_404(self, tower):
        assert http_get(tower, "/runs/latest")[0] == 404

    def test_dashboard_byte_stable_across_fetches(self, tower):
        first = http_get(tower, "/dashboard")
        second = http_get(tower, "/dashboard")
        assert first == second
        assert b"<html" in first[1]

    def test_metrics_exposition_counts_requests(self, tower):
        http_get(tower, "/healthz")
        _status, body = http_get(tower, "/metrics")
        text = body.decode()
        assert "# TYPE repro_tower_http_requests_total counter" in text
        assert 'repro_tower_http_requests_total{path="/healthz"}' in text

    def test_relayed_metrics_snapshot_lands_on_metrics_page(self):
        """A ``metrics`` record seen on the relay merges its fleet
        series into the exposition (the snapshot tap regression)."""
        recorder = Telemetry.buffered()
        recorder.__enter__()
        thread = TowerThread(TowerConfig(recorder=recorder, heartbeat=30.0))
        port = thread.start()
        try:
            recorder.emit(
                "metrics",
                worker="w7",
                snapshot={
                    "fence_reject_total": {
                        "kind": "counter",
                        "series": [
                            {"labels": {"worker": "w7"}, "value": 3.0}
                        ],
                    }
                },
            )
            deadline = time.monotonic() + 5
            text = ""
            while time.monotonic() < deadline:
                _status, body = http_get(port, "/metrics")
                text = body.decode()
                if 'repro_fence_reject_total{worker="w7"} 3' in text:
                    break
                time.sleep(0.05)
            assert 'repro_fence_reject_total{worker="w7"} 3' in text
        finally:
            thread.stop()
            recorder.__exit__(None, None, None)

    def test_post_to_get_route_405(self, tower):
        request = urllib.request.Request(
            f"http://127.0.0.1:{tower}/healthz", data=b"{}", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 405
        else:  # pragma: no cover - the request must not succeed
            pytest.fail("POST /healthz unexpectedly succeeded")
