"""The event hub: bounded fan-out, gap signalling, resume semantics."""

import asyncio
import threading
import time

import pytest

from repro.telemetry import Telemetry
from repro.tower.hub import EventHub
from repro.tower.sources import bridge_recorder


def run(coro):
    return asyncio.run(coro)


class TestFanOut:
    def test_publish_reaches_every_client(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            a = hub.subscribe()
            b = hub.subscribe()
            hub.publish({"kind": "event", "n": 1})
            assert await a.get(timeout=1) == ("event", 1, {"kind": "event", "n": 1})
            assert await b.get(timeout=1) == ("event", 1, {"kind": "event", "n": 1})

        run(main())

    def test_kind_filter_selects_subscribed_kinds_only(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            client = hub.subscribe(kinds=["alert"])
            hub.publish({"kind": "lease", "event": "claim"})
            hub.publish({"kind": "alert", "rule": "x"})
            kind, _seq, record = await client.get(timeout=1)
            assert kind == "event"
            assert record["kind"] == "alert"
            assert client.queue.empty()

        run(main())

    def test_queue_size_below_two_rejected(self):
        with pytest.raises(ValueError):
            EventHub(queue_size=1)


class TestSlowConsumer:
    """A stalled client loses records (counted, gap-marked) — it never
    stalls the publisher or other clients."""

    def test_stalled_client_drops_while_healthy_client_sees_all(self):
        async def main():
            hub = EventHub(queue_size=4)
            hub.bind(asyncio.get_running_loop())
            stalled = hub.subscribe()
            healthy = hub.subscribe()
            for n in range(50):
                hub.publish({"kind": "event", "n": n})
                # The healthy client keeps consuming; the stalled one
                # never calls get().
                kind, _seq, record = await healthy.get(timeout=1)
                assert (kind, record["n"]) == ("event", n)
            assert stalled.dropped == 50 - 4
            assert hub.dropped == 50 - 4
            assert hub.relayed == 50 + 4

        run(main())

    def test_gap_marker_precedes_resumed_flow(self):
        async def main():
            hub = EventHub(queue_size=4)
            hub.bind(asyncio.get_running_loop())
            client = hub.subscribe()
            for n in range(10):  # 4 land, 6 drop
                hub.publish({"kind": "event", "n": n})
            for n in range(4):
                kind, _seq, record = await client.get(timeout=1)
                assert (kind, record["n"]) == ("event", n)
            # Queue has room again: the next publish must announce the
            # loss before resuming the flow.
            hub.publish({"kind": "event", "n": 10})
            assert await client.get(timeout=1) == ("gap", 6)
            kind, _seq, record = await client.get(timeout=1)
            assert (kind, record["n"]) == ("event", 10)
            assert client.dropped == 6

        run(main())

    def test_gap_needs_two_slots_or_keeps_counting(self):
        async def main():
            hub = EventHub(queue_size=2)
            hub.bind(asyncio.get_running_loop())
            client = hub.subscribe()
            for n in range(5):
                hub.publish({"kind": "event", "n": n})
            # 2 queued, 3 dropped.  Draining one slot is not enough for
            # gap + record; the hub keeps dropping rather than emit a
            # gap marker that would itself fill the queue.
            await client.get(timeout=1)
            hub.publish({"kind": "event", "n": 5})
            assert client.dropped == 4
            # Draining the second slot leaves 2 free: gap + record fit.
            await client.get(timeout=1)
            hub.publish({"kind": "event", "n": 6})
            assert await client.get(timeout=1) == ("gap", 4)
            kind, _seq, record = await client.get(timeout=1)
            assert record["n"] == 6

        run(main())

    def test_publishing_never_blocks_the_emitting_thread(self):
        async def main():
            hub = EventHub(queue_size=2)
            hub.bind(asyncio.get_running_loop())
            hub.subscribe()  # never consumed
            started = time.perf_counter()
            for n in range(5000):
                hub.publish({"kind": "event", "n": n})
            return time.perf_counter() - started

        # 5000 publishes into a full queue are pure drop-and-count:
        # far under a second even on a loaded CI box.
        assert run(main()) < 2.0


class TestResume:
    def test_resume_replays_after_last_event_id_exactly(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            for n in range(10):
                hub.publish({"kind": "event", "n": n})
            client = hub.subscribe(last_event_id=4)
            got = []
            while not client.queue.empty():
                item = await client.get(timeout=1)
                got.append(item)
            assert [kind for kind, *_ in got] == ["event"] * 6
            assert [record["n"] for _k, _s, record in got] == [4, 5, 6, 7, 8, 9]
            assert [seq for _k, seq, _r in got] == [5, 6, 7, 8, 9, 10]

        run(main())

    def test_resume_past_ring_start_is_explicitly_lossy(self):
        async def main():
            hub = EventHub(ring_size=4)
            hub.bind(asyncio.get_running_loop())
            for n in range(20):
                hub.publish({"kind": "event", "n": n})
            # Ring holds seqs 17..20; resuming from 2 lost 3..16.
            client = hub.subscribe(last_event_id=2)
            assert await client.get(timeout=1) == ("gap", 14)
            seqs = []
            while not client.queue.empty():
                _kind, seq, _record = await client.get(timeout=1)
                seqs.append(seq)
            assert seqs == [17, 18, 19, 20]

        run(main())

    def test_resume_at_head_replays_nothing(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            for n in range(3):
                hub.publish({"kind": "event", "n": n})
            client = hub.subscribe(last_event_id=3)
            assert client.queue.empty()

        run(main())


class TestLifecycle:
    def test_close_delivers_eof_even_to_a_full_queue(self):
        async def main():
            hub = EventHub(queue_size=2)
            hub.bind(asyncio.get_running_loop())
            client = hub.subscribe()
            for n in range(5):
                hub.publish({"kind": "event", "n": n})
            hub.close()
            items = []
            while not client.queue.empty():
                items.append(await client.get(timeout=1))
            assert items[-1] == ("eof",)
            # Publishing after close is a silent no-op.
            hub.publish({"kind": "event", "n": 99})
            assert client.queue.empty()

        run(main())

    def test_taps_are_exception_isolated(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            seen = []

            def bad_tap(seq, record):
                raise RuntimeError("tap bug")

            hub.tap(bad_tap)
            hub.tap(lambda seq, record: seen.append(seq))
            client = hub.subscribe()
            hub.publish({"kind": "event"})
            assert await client.get(timeout=1) == ("event", 1, {"kind": "event"})
            assert seen == [1]

        run(main())


class TestRecorderBridge:
    def test_bus_emits_cross_threads_into_the_loop(self):
        """The telemetry subscriber (recorder write lock, arbitrary
        thread) hands off via call_soon_threadsafe; the loop sees every
        record and the emitting thread never needs the loop."""

        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            client = hub.subscribe()
            with Telemetry.buffered() as recorder:
                unbridge = bridge_recorder(hub, recorder)
                thread = threading.Thread(
                    target=lambda: [
                        recorder.emit("event", n=n) for n in range(20)
                    ]
                )
                thread.start()
                thread.join()
                got = []
                while len(got) < 20:
                    _kind, _seq, record = await client.get(timeout=2)
                    got.append(record["n"])
                assert got == list(range(20))
                unbridge()
                recorder.emit("event", n=99)
                await asyncio.sleep(0.05)
                assert client.queue.empty()

        run(main())

    def test_detached_bridge_restores_zero_cost_bus(self):
        async def main():
            hub = EventHub()
            hub.bind(asyncio.get_running_loop())
            with Telemetry.buffered() as recorder:
                assert not recorder._subscribers
                unbridge = bridge_recorder(hub, recorder)
                assert len(recorder._subscribers) == 1
                unbridge()
                assert not recorder._subscribers

        run(main())
