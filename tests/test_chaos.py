"""Tests for the chaos campaign harness (:mod:`repro.chaos`)."""

import pytest

from repro.chaos import (
    ChaosConfig,
    MESSAGE,
    build_control_schedule,
    build_proviso_schedule,
    check_invariants,
    run_chaos_campaign,
)
from repro.errors import ExperimentError
from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs import random_gnp
from repro.graphs.properties import is_connected
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import spawn

QUICK = ChaosConfig(n=16, reps=6, master_seed=99)


class TestSchedules:
    def _graph(self, seed=5, n=24):
        rng = spawn(seed, "test-chaos-graph")
        while True:
            g = random_gnp(n, 12.0 / n, rng)
            if is_connected(g):
                return g

    def test_proviso_schedule_protects_tree(self):
        g = self._graph()
        tree = spanning_tree(g, 0)
        schedule = build_proviso_schedule(
            g, tree, seed=1, config=QUICK, horizon=200, phase_length=8
        )
        protected = {frozenset(e) for e in tree.edges}
        for fault in schedule.edge_faults:
            assert frozenset((fault.u, fault.v)) not in protected
        # The source is never crashed or jammed.
        assert all(f.node != 0 for f in schedule.crash_faults)
        assert all(f.node != 0 for f in schedule.jam_faults)
        # All crashes are transient (crash–recover), per the proviso arm.
        assert all(f.until is not None for f in schedule.crash_faults)

    def test_proviso_survivor_graph_connected(self):
        g = self._graph(seed=6)
        tree = spanning_tree(g, 0)
        schedule = build_proviso_schedule(
            g, tree, seed=2, config=QUICK, horizon=200, phase_length=8
        )
        survivor = g.copy()
        for fault in schedule.edge_faults:
            fault.apply(survivor)
        assert is_connected(survivor)

    def test_control_schedule_disconnects_at_slot_zero(self):
        g = self._graph(seed=7)
        tree = spanning_tree(g, 0)
        schedule = build_control_schedule(g, tree, seed=3)
        assert all(f.slot == 0 for f in schedule.edge_faults)
        survivor = g.copy()
        for fault in schedule.edge_faults:
            fault.apply(survivor)
        assert not is_connected(survivor)


class TestInvariants:
    def test_clean_run_has_no_violations(self):
        g = self._connected(11)
        result = run_decay_broadcast(g, source=0, seed=11, epsilon=0.1)
        assert check_invariants(result, message=MESSAGE) == []

    def test_corrupted_payload_flagged(self):
        g = self._connected(12)
        result = run_decay_broadcast(g, source=0, seed=12, epsilon=0.1)
        violations = check_invariants(result, message="something-else")
        assert violations and all("integrity" in v for v in violations)

    def _connected(self, seed, n=16):
        rng = spawn(seed, "test-chaos-inv")
        while True:
            g = random_gnp(n, 12.0 / n, rng)
            if is_connected(g):
                return g


class TestCampaign:
    def test_fixed_seed_campaign_passes(self):
        report = run_chaos_campaign(QUICK)
        assert report.success_rate("proviso") >= report.liveness_threshold
        assert report.success_rate("control") == 0.0
        assert report.safety_violations == []
        assert report.passed
        assert len(report.outcomes) == 2 * QUICK.reps

    def test_outcomes_identical_across_jobs(self):
        serial = run_chaos_campaign(ChaosConfig(n=16, reps=6, master_seed=99, jobs=1))
        pooled = run_chaos_campaign(ChaosConfig(n=16, reps=6, master_seed=99, jobs=4))
        assert pooled.outcomes == serial.outcomes

    def test_journal_resume_reproduces_outcomes(self, tmp_path):
        journal = tmp_path / "chaos.jsonl"
        full = run_chaos_campaign(QUICK, journal=str(journal))
        # Truncate the journal as a mid-campaign kill would.
        lines = journal.read_text().splitlines()
        assert len(lines) > 2
        journal.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        # Resuming with a different worker count must still splice
        # exactly (execution knobs are not part of campaign identity).
        resumed = run_chaos_campaign(
            ChaosConfig(n=16, reps=6, master_seed=99, jobs=2),
            journal=str(journal),
            resume=True,
        )
        assert resumed.outcomes == full.outcomes

    def test_report_surfaces(self):
        report = run_chaos_campaign(QUICK)
        rendered = report.table().render()
        assert "proviso" in rendered and "control" in rendered
        import json

        payload = json.loads(report.to_json())
        assert payload["passed"] is True
        assert payload["liveness"]["ok"] is True
        assert payload["control"]["broken_as_expected"] is True

    def test_config_validation(self):
        with pytest.raises(ExperimentError, match="protocol"):
            ChaosConfig(protocol="carrier-pigeon")
        with pytest.raises(ExperimentError, match="reps"):
            ChaosConfig(reps=0)
        with pytest.raises(ExperimentError, match="n >= 2"):
            ChaosConfig(n=1)
