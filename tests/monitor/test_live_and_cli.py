"""End-to-end monitoring: monitor_log, attach_monitor, and the CLI."""

import json

import pytest

from repro.cli import main
from repro.graphs import generators
from repro.monitor import MonitorConfig, attach_monitor, monitor_log
from repro.monitor.tail import read_log_records
from repro.protocols import run_decay_broadcast
from repro.sim.faults import FaultSchedule, JamFault
from repro.telemetry import Telemetry, activate
from repro.telemetry.summary import validate_log

JAM_ALL = FaultSchedule(jam_faults=[JamFault(node=1, start=0, end=10**6)])


def write_campaign_log(path, *, reps=10, faults=None, command="experiment"):
    recorder = Telemetry.to_path(path)
    recorder.write_manifest(command=command, seed=0, config={"epsilon": 0.1})
    with recorder, activate(recorder):
        for rep in range(reps):
            run_decay_broadcast(generators.line(8), 0, seed=rep, epsilon=0.1,
                                faults=faults)
    return path


class TestMonitorLog:
    def test_nominal_log_passes(self, tmp_path):
        log = write_campaign_log(tmp_path / "ok.jsonl")
        report = monitor_log(log, config=MonitorConfig())
        assert report.alerts == [] and not report.gate_failed
        assert report.records > 20
        assert report.board["runs"]["ended"] == 10

    def test_jammed_log_fails_and_persists_alerts(self, tmp_path):
        log = write_campaign_log(tmp_path / "jam.jsonl", faults=JAM_ALL)
        report = monitor_log(log, config=MonitorConfig())
        assert report.gate_failed
        assert {a.rule for a in report.alerts} >= {"theorem1-decay"}
        # Alerts land in the log as schema-valid records...
        alerts_in_log = [r for r in read_log_records(log) if r["kind"] == "alert"]
        assert len(alerts_in_log) == len(report.alerts)
        assert alerts_in_log[0]["source"] == "monitor"
        assert validate_log(log) == []
        # ...and a second pass never re-checks them.
        again = monitor_log(log, config=MonitorConfig(), write_alerts=False)
        assert len(again.alerts) == len(report.alerts)

    def test_no_write_alerts_leaves_log_untouched(self, tmp_path):
        log = write_campaign_log(tmp_path / "jam.jsonl", faults=JAM_ALL)
        before = log.read_bytes()
        report = monitor_log(log, config=MonitorConfig(), write_alerts=False)
        assert report.gate_failed
        assert log.read_bytes() == before

    def test_follow_with_idle_timeout_terminates(self, tmp_path):
        log = write_campaign_log(tmp_path / "ok.jsonl", reps=3)
        report = monitor_log(
            log, config=MonitorConfig(), follow=True, poll_interval=0.01,
            idle_timeout=0.1,
        )
        assert report.board["runs"]["ended"] == 3


class TestAttachMonitor:
    def test_in_process_monitoring_of_a_jammed_campaign(self, tmp_path):
        log = tmp_path / "live.jsonl"
        recorder = Telemetry.to_path(log)
        _live, detach = attach_monitor(recorder, config=MonitorConfig())
        recorder.write_manifest(command="experiment", seed=0,
                                config={"epsilon": 0.1})
        with recorder, activate(recorder):
            for rep in range(10):
                run_decay_broadcast(generators.line(8), 0, seed=rep,
                                    epsilon=0.1, faults=JAM_ALL)
            report = detach()
        assert {a.rule for a in report.alerts} >= {"theorem1-decay"}
        # Alerts were emitted in-band into the same stream.
        alerts_in_log = [r for r in read_log_records(log) if r["kind"] == "alert"]
        assert len(alerts_in_log) == len(report.alerts)
        assert validate_log(log) == []


class TestMonitorCLI:
    def test_gate_passes_on_nominal_log(self, tmp_path, capsys):
        log = write_campaign_log(tmp_path / "ok.jsonl")
        code = main(["monitor", str(log), "--gate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gate: PASSED" in out

    def test_gate_fails_on_jammed_log(self, tmp_path, capsys):
        log = write_campaign_log(tmp_path / "jam.jsonl", faults=JAM_ALL)
        code = main(["monitor", str(log), "--gate"])
        out = capsys.readouterr().out
        assert code == 1
        assert "gate: FAILED" in out
        assert "theorem1-decay" in out

    def test_without_gate_exit_zero_despite_alerts(self, tmp_path, capsys):
        log = write_campaign_log(tmp_path / "jam.jsonl", faults=JAM_ALL)
        assert main(["monitor", str(log)]) == 0

    def test_json_report_is_pure_json(self, tmp_path, capsys):
        log = write_campaign_log(tmp_path / "jam.jsonl", faults=JAM_ALL)
        code = main(["monitor", str(log), "--json", "--gate",
                     "--no-write-alerts"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["gate_failed"] is True
        assert payload["alerts"][0]["rule"] == "theorem1-decay"

    def test_chrome_trace_export_via_monitor(self, tmp_path, capsys):
        from repro.monitor import validate_chrome_trace

        log = write_campaign_log(tmp_path / "ok.jsonl", reps=2)
        trace_path = tmp_path / "trace.json"
        code = main(["monitor", str(log), "--chrome-trace", str(trace_path)])
        assert code == 0
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(trace) == []

    def test_missing_log_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="monitor:"):
            main(["monitor", str(tmp_path / "nope.jsonl")])

    def test_monitor_flag_requires_telemetry(self):
        with pytest.raises(SystemExit, match="--monitor requires --telemetry"):
            main(["chaos", "--quick", "--monitor"])

    def test_monitor_flag_on_chaos_quick(self, tmp_path, capsys):
        log = tmp_path / "chaos.jsonl"
        code = main(["chaos", "--quick", "--seed", "3",
                     "--telemetry", str(log), "--monitor"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[monitor] no conformance alerts" in out
        assert validate_log(log) == []


class TestObsExportCLI:
    def test_export_writes_validated_trace(self, tmp_path, capsys):
        from repro.monitor import validate_chrome_trace

        log = write_campaign_log(tmp_path / "ok.jsonl", reps=2)
        trace_path = tmp_path / "trace.json"
        code = main(["obs", "export", str(log),
                     "--chrome-trace", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(trace) == []

    def test_export_missing_log_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="obs export:"):
            main(["obs", "export", str(tmp_path / "nope.jsonl"),
                  "--chrome-trace", str(tmp_path / "t.json")])


class TestObsJsonOutputs:
    def _ingested_db(self, tmp_path, logs):
        db = tmp_path / "runs.db"
        for log in logs:
            assert main(["obs", "ingest", str(db), str(log)]) == 0
        return db

    def test_trend_check_json_is_pure_json(self, tmp_path, capsys):
        log_a = write_campaign_log(tmp_path / "a.jsonl", reps=2)
        log_b = write_campaign_log(tmp_path / "b.jsonl", reps=3)
        db = self._ingested_db(tmp_path, [log_a, log_b])
        capsys.readouterr()
        code = main(["obs", "trend", str(db), "--metric", "slots_per_sec",
                     "--check", "--json", "--threshold", "0.99"])
        payload = json.loads(capsys.readouterr().out)  # must parse whole
        assert code in (0, 1)
        assert payload["check"]["checked"] is True
        assert isinstance(payload["points"], list)

    def test_explain_json(self, tmp_path, capsys):
        recorder = Telemetry.to_path(tmp_path / "prov.jsonl")
        recorder.write_manifest(command="experiment", seed=0, config={})
        with recorder, activate(recorder):
            run_decay_broadcast(generators.line(4), 0, seed=1, epsilon=0.1,
                                record_provenance=True)
        db = self._ingested_db(tmp_path, [tmp_path / "prov.jsonl"])
        capsys.readouterr()
        code = main(["obs", "explain", str(db), "--node", "1", "--slot", "0",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert "answer" in payload and "found" in payload
