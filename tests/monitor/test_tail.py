"""Torn-tail-tolerant log reading: TailReader and the batch readers."""

import json
import threading
import time

import pytest

from repro.errors import ExperimentError
from repro.monitor.tail import TailReader, follow_records, read_log_records
from repro.telemetry.summary import read_records, validate_log


def write_lines(path, records, *, torn_tail=None):
    with path.open("w", encoding="utf-8") as stream:
        for record in records:
            stream.write(json.dumps(record) + "\n")
        if torn_tail is not None:
            stream.write(torn_tail)  # no newline: writer caught mid-flush
    return path


class TestTailReader:
    def test_reads_complete_lines(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl", [{"kind": "event", "ts": 1.0}])
        reader = TailReader(log)
        assert reader.poll() == [{"kind": "event", "ts": 1.0}]
        assert reader.poll() == []  # nothing new

    def test_torn_tail_is_pending_not_error(self, tmp_path):
        log = write_lines(
            tmp_path / "log.jsonl",
            [{"kind": "event", "ts": 1.0}],
            torn_tail='{"kind": "run_end", "ts": 2.0, "slo',
        )
        reader = TailReader(log)
        assert len(reader.poll()) == 1
        assert reader.pending
        assert reader.invalid == 0
        # The writer finishes the record: the buffered half joins up.
        with log.open("a", encoding="utf-8") as stream:
            stream.write('ts": 5}\n')
        [completed] = reader.poll()
        assert completed == {"kind": "run_end", "ts": 2.0, "slots": 5}
        assert not reader.pending

    def test_corrupt_complete_line_counts_invalid(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('{"kind": "event"}\nnot json at all\n', encoding="utf-8")
        reader = TailReader(log)
        assert len(reader.poll()) == 1
        assert reader.invalid == 1

    def test_truncated_and_rewritten_file_restarts(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl",
                          [{"kind": "event", "n": i} for i in range(5)])
        reader = TailReader(log)
        assert len(reader.poll()) == 5
        write_lines(log, [{"kind": "event", "n": 99}])  # rerun over same path
        [record] = reader.poll()
        assert record["n"] == 99

    def test_missing_file_is_just_empty(self, tmp_path):
        reader = TailReader(tmp_path / "nope.jsonl")
        assert reader.poll() == []


class TestFollow:
    def test_follow_yields_appended_records(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl", [{"kind": "event", "n": 0}])

        def append_later():
            time.sleep(0.05)
            with log.open("a", encoding="utf-8") as stream:
                stream.write(json.dumps({"kind": "event", "n": 1}) + "\n")

        writer = threading.Thread(target=append_later)
        writer.start()
        got = list(follow_records(log, poll_interval=0.01, idle_timeout=0.5))
        writer.join()
        assert [r["n"] for r in got] == [0, 1]

    def test_stop_predicate_drains_then_exits(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl", [{"kind": "event", "n": 0}])
        got = list(
            follow_records(log, poll_interval=0.01, stop=lambda: True)
        )
        assert [r["n"] for r in got] == [0]


class TestOneShot:
    def test_read_log_records_skips_torn_tail(self, tmp_path):
        log = write_lines(
            tmp_path / "log.jsonl",
            [{"kind": "event", "n": 0}],
            torn_tail='{"kind": "event", "n"',
        )
        assert [r["n"] for r in read_log_records(log)] == [0]

    def test_read_log_records_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            read_log_records(tmp_path / "nope.jsonl")


class TestBatchReadersTolerateTruncation:
    """Satellite: truncate a real log mid-record; nothing may error."""

    def _truncated_log(self, tmp_path):
        from repro.graphs import generators
        from repro.protocols import run_decay_broadcast
        from repro.telemetry import Telemetry, activate

        log = tmp_path / "log.jsonl"
        recorder = Telemetry.to_path(log)
        recorder.write_manifest(command="experiment", seed=0, config={"n": 8})
        with recorder, activate(recorder):
            run_decay_broadcast(generators.line(8), 0, seed=1, epsilon=0.1)
        # Chop the file mid-way through its final record, simulating a
        # reader racing the writer's flush (or a killed campaign).
        data = log.read_bytes().rstrip(b"\n")
        log.write_bytes(data[: len(data) - 7])
        return log

    def test_read_records_drops_only_the_torn_record(self, tmp_path):
        log = self._truncated_log(tmp_path)
        lenient = read_records(log)
        strict = read_records(log, strict=True)  # must not raise
        assert lenient == strict
        assert lenient, "the complete prefix must still decode"

    def test_validate_log_reports_clean(self, tmp_path):
        log = self._truncated_log(tmp_path)
        assert validate_log(log) == []

    def test_tail_reader_buffers_the_same_tail(self, tmp_path):
        log = self._truncated_log(tmp_path)
        reader = TailReader(log)
        records = reader.poll()
        assert records == read_records(log)
        assert reader.pending
        assert reader.invalid == 0


class TestRotation:
    """Satellite regression: a rotated log must be re-opened, not
    silently stalled on a stale offset."""

    def test_rename_away_and_recreate_resets_to_top(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl",
                          [{"kind": "event", "n": i} for i in range(3)])
        reader = TailReader(log)
        assert len(reader.poll()) == 3
        # Rotate: the writer renames the log aside and starts a fresh
        # file at the same path.  The new file is *longer* than the old
        # offset, so a size-only check would misread from mid-record.
        log.rename(tmp_path / "log.jsonl.1")
        write_lines(log, [{"kind": "event", "n": 100 + i} for i in range(5)])
        records = reader.poll()
        assert [r["n"] for r in records] == [100, 101, 102, 103, 104]
        assert reader.rotations == 1

    def test_poll_during_rotation_gap_is_empty_then_recovers(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl", [{"kind": "event", "n": 0}])
        reader = TailReader(log)
        assert len(reader.poll()) == 1
        log.rename(tmp_path / "log.jsonl.1")  # mid-rotation: path missing
        assert reader.poll() == []
        write_lines(log, [{"kind": "event", "n": 1}])
        [record] = reader.poll()
        assert record["n"] == 1

    def test_pending_tail_is_dropped_on_rotation(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl",
                          [{"kind": "event", "n": 0}],
                          torn_tail='{"kind": "event", "n"')
        reader = TailReader(log)
        reader.poll()
        assert reader.pending
        log.rename(tmp_path / "log.jsonl.1")
        write_lines(log, [{"kind": "event", "n": 7}])
        [record] = reader.poll()
        # The old torn half must not be glued onto the new file's bytes.
        assert record["n"] == 7
        assert not reader.pending
        assert reader.invalid == 0

    def test_follow_records_survives_rotation(self, tmp_path):
        log = write_lines(tmp_path / "log.jsonl", [{"kind": "event", "n": 0}])

        def rotate_later():
            time.sleep(0.05)
            log.rename(tmp_path / "log.jsonl.1")
            write_lines(log, [{"kind": "event", "n": 1}])

        writer = threading.Thread(target=rotate_later)
        writer.start()
        got = list(follow_records(log, poll_interval=0.01, idle_timeout=0.5))
        writer.join()
        assert [r["n"] for r in got] == [0, 1]
