"""Chrome trace-event export: structure, lanes, and the CI validator."""

import json

from repro.graphs import generators
from repro.monitor.chrome_trace import (
    chrome_trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.protocols import run_decay_broadcast
from repro.telemetry import Telemetry, activate


def real_records():
    recorder = Telemetry.buffered()
    recorder.write_manifest(command="experiment", seed=0, config={"n": 8})
    with recorder, activate(recorder):
        with recorder.span("campaign"):
            run_decay_broadcast(generators.line(8), 0, seed=1, epsilon=0.1)
        recorder.counter("reps_done", 1)
    return recorder.drain()


class TestExport:
    def test_real_log_round_trips_and_validates(self, tmp_path):
        trace = write_chrome_trace(real_records(), tmp_path / "trace.json")
        assert validate_chrome_trace(trace) == []
        reloaded = json.loads((tmp_path / "trace.json").read_text(encoding="utf-8"))
        assert reloaded["displayTimeUnit"] == "ms"
        assert reloaded["traceEvents"] == trace["traceEvents"]

    def test_contains_run_slice_phase_instants_and_counters(self):
        events = chrome_trace_events(real_records())
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        runs = [e for e in events if e.get("cat") == "run"]
        assert len(runs) == 1 and runs[0]["ph"] == "X" and runs[0]["dur"] >= 1
        spans = [e for e in events if e.get("cat") == "span"]
        assert any(e["name"] == "campaign" for e in spans)
        assert any(e.get("cat") == "phase" for e in events)  # decay phase markers
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "reps_done" for e in counters)

    def test_timestamps_rebased_to_zero(self):
        events = [e for e in chrome_trace_events(real_records()) if "ts" in e]
        assert min(e["ts"] for e in events) == 0

    def test_chunk_records_get_their_own_lane(self):
        records = [
            {"kind": "run_begin", "ts": 10.0, "run": "r1", "chunk": 2},
            {"kind": "run_end", "ts": 10.5, "run": "r1", "chunk": 2,
             "wall_s": 0.5},
            {"kind": "chunk", "ts": 10.6, "index": 2, "chunk": 2,
             "size": 4, "wall_s": 0.6, "pid": 123},
        ]
        events = chrome_trace_events(records)
        lanes = {e["tid"] for e in events if e["ph"] != "M"}
        assert lanes == {3}  # chunk 2 -> tid 3
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "chunk 2" in names

    def test_unfinished_run_rendered_as_instant(self):
        records = [{"kind": "run_begin", "ts": 1.0, "run": "r1", "nodes": 8}]
        events = chrome_trace_events(records)
        unfinished = [e for e in events if "unfinished" in e.get("name", "")]
        assert len(unfinished) == 1 and unfinished[0]["ph"] == "i"

    def test_alert_records_become_instants(self):
        records = [
            {"kind": "alert", "ts": 2.0, "rule": "theorem1-decay",
             "severity": "critical", "message": "boom"},
        ]
        [alert] = [e for e in chrome_trace_events(records) if e["ph"] == "i"]
        assert alert["name"] == "alert:theorem1-decay"
        assert alert["args"]["severity"] == "critical"


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["trace must be a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_rejects_bad_event_shapes(self):
        trace = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0},
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": -5, "dur": 0},
            {"ph": "i", "pid": 1, "tid": 0, "ts": 1},
        ]}
        errors = validate_chrome_trace(trace)
        assert any("unsupported ph" in e for e in errors)
        assert any("non-negative" in e for e in errors)
        assert any("positive dur" in e for e in errors)
        assert any("missing name" in e for e in errors)

    def test_accepts_generated_trace(self):
        assert validate_chrome_trace(chrome_trace(real_records())) == []
