"""Monte-Carlo validation of the conformance checkers.

The statistical SLOs are calibrated so that, per evaluation, a nominal
campaign trips with probability at most ``alpha`` (the Hoeffding tail
is an upper bound on the false-alarm probability).  With fixed seeds
the runs below are deterministic, so these tests are exact, not flaky:
nominal seeded campaigns must never fire, and a jammed campaign whose
broadcasts provably cannot complete must fire once enough evidence
accumulates.
"""

import math

import pytest

from repro.analysis.theory import hoeffding_lower_tail
from repro.graphs import generators
from repro.monitor.conformance import (
    AccountingChecker,
    BroadcastBudgetChecker,
    ChaosInvariantChecker,
    ConformanceMonitor,
    DecaySuccessChecker,
    MonitorConfig,
    OmegaFloorChecker,
    default_checkers,
)
from repro.protocols import run_decay_broadcast
from repro.sim.faults import FaultSchedule, JamFault
from repro.telemetry import Telemetry, activate


def campaign_records(*, reps, graph_factory, seed0=0, faults=None, epsilon=0.1):
    """Telemetry records of a seeded broadcast campaign (in memory)."""
    recorder = Telemetry.buffered()
    recorder.write_manifest(command="experiment", seed=seed0,
                            config={"epsilon": epsilon})
    with recorder, activate(recorder):
        for rep in range(reps):
            run_decay_broadcast(
                graph_factory(), 0, seed=seed0 + rep, epsilon=epsilon,
                faults=faults,
            )
    return recorder.drain()


def feed_all(monitor, records):
    for record in records:
        monitor.feed(record)
    monitor.finish()
    return monitor.alerts


class TestNominalCampaignsNeverFire:
    """Provably quiet: seeded nominal runs stay inside every SLO."""

    @staticmethod
    def _gnp24():
        from repro.rng import spawn

        return generators.random_gnp(24, 8.0 / 24, spawn(7, "mon"))

    @pytest.mark.parametrize("factory,label", [
        (lambda: generators.line(12), "line-12"),
        (lambda: generators.grid(4, 6), "grid-4x6"),
        (_gnp24.__func__, "gnp-24"),
    ])
    def test_no_alerts_on_nominal_runs(self, factory, label):
        records = campaign_records(reps=12, graph_factory=factory)
        config = MonitorConfig(epsilon=0.1)
        monitor = ConformanceMonitor(default_checkers(config))
        alerts = feed_all(monitor, records)
        assert alerts == [], f"{label}: nominal campaign fired {alerts}"

    def test_hoeffding_margin_on_nominal_tally(self):
        # Even a campaign losing a quarter of its runs is statistically
        # compatible with the 80% floor at this sample size: the gate
        # needs overwhelming evidence, not one bad streak.
        assert hoeffding_lower_tail(12, 0.8, 9) >= MonitorConfig().alpha
        # Total failure, by contrast, is incompatible as soon as the
        # min-runs warmup is over.
        assert hoeffding_lower_tail(8, 0.8, 0) < MonitorConfig().alpha
        assert math.isclose(
            hoeffding_lower_tail(8, 0.8, 0), math.exp(-2 * 8 * 0.8**2)
        )


class TestJammedCampaignFires:
    """A jammer severing the only path guarantees failure — and an alert."""

    def _jammed_records(self, reps=10):
        # line(8) with node 1 jammed for the whole run: the source's
        # only neighbor never relays, so broadcast can never complete.
        schedule = FaultSchedule(jam_faults=[JamFault(node=1, start=0, end=10**6)])
        return campaign_records(
            reps=reps, graph_factory=lambda: generators.line(8), faults=schedule
        )

    def test_theorem1_checker_fires(self):
        config = MonitorConfig(epsilon=0.1)
        monitor = ConformanceMonitor(default_checkers(config))
        alerts = feed_all(monitor, self._jammed_records())
        rules = {alert.rule for alert in alerts}
        assert "theorem1-decay" in rules
        decay = next(a for a in alerts if a.rule == "theorem1-decay")
        assert decay.severity == "critical"
        assert decay.threshold == pytest.approx(0.8)
        assert decay.value == 0.0

    def test_alert_latches_once(self):
        checker = DecaySuccessChecker(MonitorConfig(epsilon=0.1))
        monitor = ConformanceMonitor([checker])
        alerts = feed_all(monitor, self._jammed_records(reps=20))
        assert len(alerts) == 1  # latched after the first firing

    def test_fires_exactly_at_min_runs_under_total_failure(self):
        config = MonitorConfig(epsilon=0.1, min_runs=8)
        checker = DecaySuccessChecker(config)
        monitor = ConformanceMonitor([checker])
        fired_at = None
        for record in self._jammed_records(reps=10):
            if monitor.feed(record):
                fired_at = checker.trials
                break
        assert fired_at == 8


class TestBudgetChecker:
    def test_budget_uses_worst_case_topology_when_unknown(self):
        checker = BroadcastBudgetChecker(MonitorConfig(epsilon=0.1))
        from repro.core.bounds import theorem4_slot_bound

        assert checker.budget_for(16) == theorem4_slot_bound(16, 15, 15, 0.1)

    def test_fires_when_completions_exceed_budget(self):
        # Fabricated stream: every run "succeeds" but far over budget.
        config = MonitorConfig(epsilon=0.1, diameter=2, max_degree=2)
        checker = BroadcastBudgetChecker(config)
        monitor = ConformanceMonitor([checker])
        budget = checker.budget_for(8)
        records = []
        for i in range(10):
            records.append({"kind": "run_begin", "ts": float(i), "run": f"r{i}",
                            "nodes": 8, "initiators": 1})
            records.append({"kind": "run_end", "ts": float(i) + 0.5,
                            "run": f"r{i}", "informed": 8, "deliveries": 10,
                            "last_reception_slot": budget + 1000})
        alerts = feed_all(monitor, records)
        assert [a.rule for a in alerts] == ["theorem4-budget"]


class TestLowerBoundAndAccounting:
    def _run_pair(self, i, **end_fields):
        begin = {"kind": "run_begin", "ts": float(i), "run": f"r{i}",
                 "nodes": 16, "initiators": 1}
        end = {"kind": "run_end", "ts": float(i) + 0.5, "run": f"r{i}",
               "informed": 16, "deliveries": 30}
        end.update(end_fields)
        return [begin, end]

    def test_omega_floor_fires_on_impossible_completion(self):
        config = MonitorConfig(deterministic_floor=True)
        monitor = ConformanceMonitor([OmegaFloorChecker(config)])
        alerts = feed_all(monitor, self._run_pair(0, last_reception_slot=3))
        assert [a.rule for a in alerts] == ["omega-n-floor"]
        assert alerts[0].threshold == 8  # ceil(16/2)

    def test_omega_floor_quiet_at_or_above_floor(self):
        config = MonitorConfig(deterministic_floor=True)
        monitor = ConformanceMonitor([OmegaFloorChecker(config)])
        assert feed_all(monitor, self._run_pair(0, last_reception_slot=8)) == []

    def test_accounting_fires_when_deliveries_cannot_explain_informed(self):
        monitor = ConformanceMonitor([AccountingChecker(MonitorConfig())])
        alerts = feed_all(monitor, self._run_pair(0, deliveries=3))
        assert [a.rule for a in alerts] == ["delivery-accounting"]

    def test_accounting_quiet_when_consistent(self):
        monitor = ConformanceMonitor([AccountingChecker(MonitorConfig())])
        assert feed_all(monitor, self._run_pair(0, deliveries=15)) == []


def chaos_trial(i, *, arm, success, violations=0, epsilon=0.1, mc_slack=0.1,
                control_success_max=0.0):
    return {"kind": "chaos_trial", "ts": float(i), "arm": arm, "seed": i,
            "success": success, "violations": violations, "epsilon": epsilon,
            "mc_slack": mc_slack, "control_success_max": control_success_max}


class TestChaosChecker:
    def test_nominal_chaos_stream_is_quiet(self):
        records = [chaos_trial(i, arm="proviso", success=True) for i in range(10)]
        records += [chaos_trial(i + 10, arm="control", success=False)
                    for i in range(10)]
        monitor = ConformanceMonitor([ChaosInvariantChecker(MonitorConfig())])
        assert feed_all(monitor, records) == []

    def test_safety_violation_fires_immediately(self):
        monitor = ConformanceMonitor([ChaosInvariantChecker(MonitorConfig())])
        alerts = feed_all(
            monitor, [chaos_trial(0, arm="proviso", success=True, violations=2)]
        )
        assert [a.rule for a in alerts] == ["chaos-safety"]

    def test_liveness_breach_fires_after_evidence_accumulates(self):
        records = [chaos_trial(i, arm="proviso", success=False) for i in range(10)]
        monitor = ConformanceMonitor([ChaosInvariantChecker(MonitorConfig())])
        alerts = feed_all(monitor, records)
        assert [a.rule for a in alerts] == ["chaos-liveness"]
        assert alerts[0].threshold == pytest.approx(0.8)  # 1 - eps - slack

    def test_control_success_fires_on_first_trial(self):
        monitor = ConformanceMonitor([ChaosInvariantChecker(MonitorConfig())])
        alerts = feed_all(monitor, [chaos_trial(0, arm="control", success=True)])
        assert [a.rule for a in alerts] == ["chaos-control"]


class TestCheckerSelection:
    def test_chaos_manifest_omits_broadcast_slos(self):
        checkers = default_checkers(
            MonitorConfig(), manifest={"command": "chaos"}
        )
        rules = {type(c).__name__ for c in checkers}
        assert "DecaySuccessChecker" not in rules
        assert "ChaosInvariantChecker" in rules

    def test_chaos_records_disarm_broadcast_slos_dynamically(self):
        # No manifest hint: the monitor starts with the broadcast SLOs
        # armed, then drops them on the first chaos_trial — the control
        # arm fails broadcasts by design and must not trip Theorem 1.
        monitor = ConformanceMonitor(default_checkers(MonitorConfig()))
        records = []
        for i in range(10):
            records.append({"kind": "run_begin", "ts": float(i), "run": f"r{i}",
                            "nodes": 16, "initiators": 1})
            records.append({"kind": "run_end", "ts": float(i) + 0.5,
                            "run": f"r{i}", "informed": 1, "deliveries": 0})
            records.append(chaos_trial(i, arm="control", success=False))
        assert feed_all(monitor, records) == []

    def test_alert_records_are_never_rechecked(self):
        monitor = ConformanceMonitor(default_checkers(MonitorConfig()))
        monitor.feed({"kind": "alert", "ts": 0.0, "rule": "theorem1-decay",
                      "severity": "critical", "message": "from a prior pass"})
        assert monitor.alerts == []
        assert monitor.records_seen == 0


class TestEpsilonResolution:
    def test_manifest_epsilon_wins_when_not_overridden(self):
        config = MonitorConfig.from_manifest(
            {"command": "experiment", "config": {"epsilon": 0.2}}
        )
        assert config.epsilon == pytest.approx(0.2)
        assert DecaySuccessChecker(config).target == pytest.approx(0.6)

    def test_cli_epsilon_overrides_manifest(self):
        config = MonitorConfig.from_manifest(
            {"config": {"epsilon": 0.2}}, epsilon=0.05
        )
        assert config.epsilon == pytest.approx(0.05)
