"""The live status board and its two render modes."""

import io

from repro.monitor.board import BoardRenderer, StatusBoard
from repro.monitor.conformance import Alert


def feed_board(board, records):
    for record in records:
        board.update(record)
    return board


def sample_records():
    return [
        {"kind": "manifest", "ts": 0.0, "command": "experiment"},
        {"kind": "run_begin", "ts": 1.0, "run": "r1", "nodes": 8},
        {"kind": "run_end", "ts": 2.0, "run": "r1", "slots": 100,
         "transmissions": 50, "collisions": 10, "deliveries": 7,
         "wall_s": 0.5, "informed": 8},
        {"kind": "run_begin", "ts": 3.0, "run": "r2", "nodes": 8},
        {"kind": "run_end", "ts": 4.0, "run": "r2", "slots": 100,
         "transmissions": 40, "collisions": 30, "deliveries": 2,
         "wall_s": 0.5, "informed": 3},
        {"kind": "progress", "ts": 4.5, "done": 2, "total": 10},
        {"kind": "fault", "ts": 4.6, "fault": "jam", "node": 1},
    ]


class TestStatusBoard:
    def test_aggregates_stream(self):
        board = feed_board(StatusBoard(), sample_records())
        assert board.command == "experiment"
        assert board.runs_begun == 2 and board.runs_ended == 2
        assert board.runs_succeeded == 1  # r2 informed 3 < 8 nodes
        assert board.slots == 200
        assert board.slots_per_sec == 200.0
        assert board.collision_rate == 40 / 90
        assert board.progress_done == 2 and board.progress_total == 10
        assert board.faults == 1

    def test_snapshot_is_json_shaped(self):
        board = feed_board(StatusBoard(), sample_records())
        board.note_alert(Alert(rule="x", severity="critical", message="m"))
        snap = board.snapshot()
        assert snap["runs"] == {"begun": 2, "ended": 2, "succeeded": 1}
        assert snap["alerts"][0]["rule"] == "x"

    def test_lines_reflect_alerts(self):
        board = feed_board(StatusBoard(), sample_records())
        assert "alerts: none" in board.lines()
        board.note_alert(Alert(rule="theorem1-decay", severity="critical",
                               message="too many failures", theorem="1"))
        lines = board.lines()
        assert any("ALERTS OPEN: 1" in line for line in lines)
        assert any("theorem1-decay" in line for line in lines)

    def test_empty_board_renders(self):
        assert StatusBoard().lines()
        assert StatusBoard().status_line().startswith("monitor:")


class TestRenderer:
    def test_plain_mode_emits_lines(self):
        board = StatusBoard()
        out = io.StringIO()
        renderer = BoardRenderer(board, stream=out, interval=0.0, plain=True)
        renderer.refresh(force=True)
        feed_board(board, sample_records())
        renderer.refresh(force=True)
        lines = out.getvalue().splitlines()
        assert all(line.startswith("monitor:") for line in lines)
        assert len(lines) == 2
        assert "\x1b[" not in out.getvalue()  # no ANSI when piped

    def test_plain_mode_suppresses_duplicate_lines(self):
        board = StatusBoard()
        out = io.StringIO()
        renderer = BoardRenderer(board, stream=out, interval=0.0, plain=True)
        renderer.refresh()
        renderer.refresh()  # unchanged: no second line
        assert len(out.getvalue().splitlines()) == 1

    def test_tty_mode_repaints_in_place(self):
        board = StatusBoard()
        out = io.StringIO()
        renderer = BoardRenderer(board, stream=out, interval=0.0, plain=False)
        renderer.refresh(force=True)
        feed_board(board, sample_records())
        renderer.refresh(force=True)
        painted = out.getvalue()
        assert "\x1b[2K" in painted  # clears each line before repaint
        assert f"\x1b[{len(board.lines())}F" in painted  # cursor-up rewind

    def test_auto_detects_non_tty(self):
        renderer = BoardRenderer(StatusBoard(), stream=io.StringIO())
        assert renderer.plain is True
