"""Cross-module integration tests.

These tie the substrates together the way the paper's narrative does:
the same topology is attacked by every protocol; schedules extracted
from randomized runs replay deterministically; the C_n family behaves
per-theory for all protocols at once.
"""

import pytest

from repro.core.schedule import extract_schedule, verify_schedule
from repro.graphs import c_n, grid, random_gnp
from repro.graphs.properties import diameter, distances_from
from repro.protocols.base import run_broadcast
from repro.protocols.decay_bfs import run_bfs
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.protocols.dfs_broadcast import make_dfs_programs
from repro.protocols.round_robin import make_round_robin_programs
from repro.rng import spawn


@pytest.fixture(scope="module")
def topology():
    return random_gnp(48, 0.1, spawn(2024, "integration"))


class TestAllProtocolsSameTopology:
    def test_every_protocol_completes(self, topology):
        g = topology
        outcomes = {}
        outcomes["decay"] = run_decay_broadcast(
            g, source=0, seed=1, epsilon=0.05
        ).broadcast_succeeded(source=0)
        dfs = run_broadcast(
            g, make_dfs_programs(g, 0), initiators={0},
            max_slots=4 * g.num_nodes(), stop="informed",
        )
        outcomes["dfs"] = dfs.broadcast_succeeded(source=0)
        rr = run_broadcast(
            g, make_round_robin_programs(g, 0), initiators={0},
            max_slots=g.num_nodes() * (diameter(g) + 2), stop="informed",
        )
        outcomes["round-robin"] = rr.broadcast_succeeded(source=0)
        assert all(outcomes.values()), outcomes

    def test_deterministic_protocols_agree_on_reachability(self, topology):
        g = topology
        dfs = run_broadcast(
            g, make_dfs_programs(g, 0), initiators={0},
            max_slots=4 * g.num_nodes(), stop="informed",
        )
        rr = run_broadcast(
            g, make_round_robin_programs(g, 0), initiators={0},
            max_slots=g.num_nodes() * (diameter(g) + 2), stop="informed",
        )
        reached_dfs = set(dfs.metrics.first_reception) | {0}
        reached_rr = set(rr.metrics.first_reception) | {0}
        assert reached_dfs == reached_rr == set(g.nodes)


class TestScheduleRoundTrip:
    def test_randomized_run_yields_replayable_schedule(self, topology):
        g = topology
        result = run_decay_broadcast(
            g, source=0, seed=11, epsilon=0.05, record_trace=True
        )
        assert result.broadcast_succeeded(source=0)
        schedule = extract_schedule(result.trace, 0)
        assert verify_schedule(g, 0, schedule)
        # The paper's observation: the distributed protocol has *found*
        # a short schedule — far shorter than its own running time.
        assert len(schedule) < result.slots


class TestBFSConsistentWithBroadcast:
    def test_bfs_distances_lower_bound_broadcast_times(self):
        # A node at distance d cannot receive before phase d; check the
        # measured first-reception slot respects the layered structure.
        g = grid(5, 5)
        truth = distances_from(g, 0)
        result = run_decay_broadcast(g, source=0, seed=7, epsilon=0.05)
        k = result.programs[0].k
        for node, slot in result.metrics.first_reception.items():
            # Reaching layer d takes at least d slots (one hop per slot
            # at absolute best).
            assert slot >= truth[node] - 1

    def test_bfs_and_truth_agree_on_cn(self):
        g = c_n(12, {5, 9})
        truth = distances_from(g, 0)
        result = run_bfs(g, 0, seed=5, epsilon=0.05)
        assert result.node_results() == truth


class TestCnFamilyTheory:
    def test_three_protocols_on_cn(self):
        n = 24
        g = c_n(n, {n})  # worst-case S for deterministic sweeps
        decay = run_decay_broadcast(g, source=0, seed=1, epsilon=0.05)
        assert decay.broadcast_succeeded(source=0)
        dfs = run_broadcast(
            g, make_dfs_programs(g, 0), initiators={0},
            max_slots=4 * (n + 2), stop="informed",
        )
        rr = run_broadcast(
            g, make_round_robin_programs(g, 0), initiators={0},
            max_slots=(n + 2) * 6, stop="informed",
        )
        decay_slot = decay.broadcast_completion_slot(source=0)
        dfs_slot = dfs.broadcast_completion_slot(source=0)
        rr_slot = rr.broadcast_completion_slot(source=0)
        # Deterministic protocols pay Θ(n) on this instance.
        assert dfs_slot >= n / 2
        assert rr_slot >= n / 2
        # The randomized protocol is much faster already at n=24.
        assert decay_slot < min(dfs_slot, rr_slot)
