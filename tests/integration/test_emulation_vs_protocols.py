"""Cross-checks between the emulation layer and the native protocols.

Two independently built stacks compute the same things:

* ``protocols.leader_election`` implements bit-probing election
  directly as a NodeProgram;
* ``emulation`` runs the generic single-hop :class:`MaxFindingProtocol`
  through the [BGI89] channel emulation.

Their answers must coincide (both elect the maximum ID) — a strong
mutual consistency check across ~two thousand lines of machinery.
"""

import pytest

from repro.emulation import MaxFindingProtocol, run_emulated
from repro.graphs import grid, ring
from repro.protocols.leader_election import run_leader_election


@pytest.mark.parametrize("g", [ring(7), grid(3, 3)], ids=["ring", "grid"])
def test_native_and_emulated_election_agree(g):
    bits = max(1, (max(g.nodes)).bit_length())
    native = run_leader_election(g, seed=4, epsilon=0.1)
    native_winner = {out["winner_id"] for out in native.node_results().values()}

    emulated = run_emulated(
        g,
        {i: MaxFindingProtocol(i, bits, active=True) for i in g.nodes},
        max_rounds=bits + 1,
        seed=4,
        epsilon=0.1,
    )
    emulated_winner = {
        out["winner"] for out in emulated.node_results().values()
    }
    assert native_winner == emulated_winner == {max(g.nodes)}


def test_emulated_election_with_partial_candidates():
    # The emulation is strictly more general: only a subset campaigns.
    g = grid(3, 3)
    candidates = {2, 5, 7}
    bits = 4
    result = run_emulated(
        g,
        {i: MaxFindingProtocol(i, bits, active=(i in candidates)) for i in g.nodes},
        max_rounds=bits + 1,
        seed=6,
        epsilon=0.1,
    )
    outs = result.node_results()
    assert {o["winner"] for o in outs.values()} == {7}
    leaders = [node for node, o in outs.items() if o["is_winner"]]
    assert leaders == [7]


def test_emulation_overhead_is_the_priced_in_factor():
    # Per emulated round: (id_bits + 2) sub-epochs of a Theorem-4 bound.
    # The native protocol pays one epoch per bit. Check the emulated
    # run's slot count is within the expected small multiple.
    g = ring(8)
    bits = 3
    native = run_leader_election(g, seed=1, epsilon=0.1)
    emulated = run_emulated(
        g,
        {i: MaxFindingProtocol(i, bits, active=True) for i in g.nodes},
        max_rounds=bits + 1,
        seed=1,
        epsilon=0.1,
    )
    assert emulated.slots <= 40 * native.slots  # generous but bounded
