"""Dense adjacency export: array conventions and version-keyed caching."""

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import DiGraph, Graph, line, star
from repro.graphs.matrix import AdjacencyExport, adjacency_matrix


def test_undirected_export_is_symmetric():
    g = line(4)  # 0-1-2-3
    export = adjacency_matrix(g)
    assert len(export) == 4
    assert export.nodes == g.nodes
    assert export.index == {node: i for i, node in enumerate(g.nodes)}
    assert export.hears.dtype == np.float32
    assert np.array_equal(export.hears, export.hears.T)
    for u, v in g.edges:
        assert export.hears[export.index[u], export.index[v]] == 1.0
    assert export.hears.sum() == 2 * len(g.edges)
    assert np.diagonal(export.hears).sum() == 0.0


def test_directed_export_is_one_way():
    g = DiGraph()
    g.add_edge("a", "b")
    export = adjacency_matrix(g)
    assert export.hears[export.index["a"], export.index["b"]] == 1.0
    assert export.hears[export.index["b"], export.index["a"]] == 0.0


def test_matmul_counts_audible_transmitters():
    """The one identity the vectorized resolver rests on."""
    g = star(4)  # hub 0, leaves 1..4
    export = adjacency_matrix(g)
    transmit = np.zeros((1, len(export)), dtype=np.float32)
    transmit[0, export.index[1]] = 1.0
    transmit[0, export.index[2]] = 1.0
    counts = transmit @ export.hears
    assert counts[0, export.index[0]] == 2.0  # the hub hears both leaves
    assert counts[0, export.index[3]] == 0.0  # leaves hear only the hub


def test_export_cached_until_graph_mutates():
    g = line(3)
    first = adjacency_matrix(g)
    assert adjacency_matrix(g) is first  # same version -> same arrays
    g.add_edge(0, 2)
    second = adjacency_matrix(g)
    assert second is not first
    assert second.hears[second.index[0], second.index[2]] == 1.0
    assert adjacency_matrix(g) is second


def test_copy_does_not_inherit_the_cache():
    """A copy at the same version must not alias the original's arrays."""
    g = line(3)
    original = adjacency_matrix(g)
    clone = g.copy()
    clone.remove_edge(0, 1)
    export = adjacency_matrix(clone)
    assert export.hears[export.index[0], export.index[1]] == 0.0
    assert original.hears[original.index[0], original.index[1]] == 1.0


def test_export_type_shape():
    export = adjacency_matrix(Graph())
    assert isinstance(export, AdjacencyExport)
    assert len(export) == 0
    assert export.hears.shape == (0, 0)
