"""Tests for the Watts-Strogatz small-world generator."""

import random

import pytest

from repro.errors import GraphError
from repro.graphs import diameter, is_connected, watts_strogatz


class TestStructure:
    def test_beta_zero_is_ring_lattice(self):
        g = watts_strogatz(12, 4, 0.0, random.Random(0))
        assert g.num_edges() == 12 * 2
        for node in range(12):
            assert g.degree(node) == 4
            assert g.has_edge(node, (node + 1) % 12)
            assert g.has_edge(node, (node + 2) % 12)

    def test_edge_count_preserved_under_rewiring(self):
        for beta in (0.1, 0.5, 1.0):
            g = watts_strogatz(30, 4, beta, random.Random(3))
            # Rewiring may occasionally keep an edge (duplicate target)
            # but never creates extras; stitching can add a few.
            assert 30 * 2 <= g.num_edges() <= 30 * 2 + 3

    def test_always_connected(self):
        for seed in range(10):
            for beta in (0.0, 0.3, 0.9):
                g = watts_strogatz(40, 4, beta, random.Random(seed))
                assert is_connected(g)

    def test_small_world_effect(self):
        lattice = watts_strogatz(64, 4, 0.0, random.Random(1))
        rewired = watts_strogatz(64, 4, 0.5, random.Random(1))
        assert diameter(rewired) < diameter(lattice)

    def test_reproducible(self):
        a = watts_strogatz(30, 4, 0.4, random.Random(9))
        b = watts_strogatz(30, 4, 0.4, random.Random(9))
        assert a == b


class TestValidation:
    def test_n_too_small(self):
        with pytest.raises(GraphError):
            watts_strogatz(2, 2, 0.1, random.Random(0))

    def test_k_constraints(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1, random.Random(0))  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, 0, 0.1, random.Random(0))
        with pytest.raises(GraphError):
            watts_strogatz(10, 10, 0.1, random.Random(0))  # k >= n

    def test_beta_range(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 2, 1.5, random.Random(0))


class TestAsBroadcastWorkload:
    def test_decay_broadcast_completes(self):
        from repro.protocols import run_decay_broadcast

        g = watts_strogatz(50, 4, 0.3, random.Random(5))
        result = run_decay_broadcast(g, source=0, seed=1, epsilon=0.05)
        assert result.broadcast_succeeded(source=0)

    def test_diameter_knob_changes_broadcast_time(self):
        from repro.analysis.stats import mean
        from repro.protocols import run_decay_broadcast

        def mean_time(beta):
            g = watts_strogatz(64, 4, beta, random.Random(2))
            slots = []
            for seed in range(8):
                r = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.1)
                s = r.broadcast_completion_slot(source=0)
                if s is not None:
                    slots.append(s)
            return mean(slots)

        # The high-diameter lattice takes longer than the small world.
        assert mean_time(0.0) > mean_time(0.9)
