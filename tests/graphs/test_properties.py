"""Tests for graph property algorithms."""

import pytest

from repro.errors import GraphError, NodeNotFound
from repro.graphs import (
    DiGraph,
    Graph,
    bfs_layers,
    c_n,
    degree_histogram,
    diameter,
    distances_from,
    eccentricity,
    grid,
    is_connected,
    line,
    max_degree,
    ring,
    star,
)


class TestDistances:
    def test_line_distances(self):
        g = line(5)
        assert distances_from(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_source_not_in_graph(self):
        with pytest.raises(NodeNotFound):
            distances_from(line(3), 99)

    def test_unreachable_nodes_absent(self):
        g = Graph(nodes=[0, 1], edges=[])
        assert distances_from(g, 0) == {0: 0}

    def test_digraph_follows_direction(self):
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert distances_from(g, 0) == {0: 0, 1: 1, 2: 2}
        assert distances_from(g, 2) == {2: 0}


class TestLayers:
    def test_star_layers(self):
        g = star(4)
        layers = bfs_layers(g, 0)
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2, 3, 4]

    def test_cn_layers(self):
        g = c_n(6, {2, 4})
        layers = bfs_layers(g, 0)
        assert [len(layer) for layer in layers] == [1, 6, 1]

    def test_layers_partition_nodes(self):
        g = grid(4, 5)
        layers = bfs_layers(g, 0)
        flattened = [v for layer in layers for v in layer]
        assert sorted(flattened) == sorted(g.nodes)


class TestEccentricityAndDiameter:
    def test_line_eccentricities(self):
        g = line(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_requires_connectivity(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            eccentricity(g, 0)

    def test_ring_diameter(self):
        assert diameter(ring(8)) == 4
        assert diameter(ring(9)) == 4

    def test_single_node_diameter_zero(self):
        assert diameter(line(1)) == 0

    def test_empty_graph_diameter(self):
        with pytest.raises(GraphError):
            diameter(Graph())


class TestConnectivity:
    def test_connected(self):
        assert is_connected(grid(3, 3))

    def test_disconnected(self):
        assert not is_connected(Graph(nodes=[0, 1]))

    def test_empty_is_connected(self):
        assert is_connected(Graph())

    def test_digraph_strongly_connected(self):
        cycle = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert is_connected(cycle)
        chain = DiGraph(edges=[(0, 1), (1, 2)])
        assert not is_connected(chain)


class TestDegrees:
    def test_max_degree_undirected(self):
        assert max_degree(star(9)) == 9

    def test_max_degree_digraph_uses_in_degree(self):
        g = DiGraph(edges=[(0, 2), (1, 2), (2, 0)])
        assert max_degree(g) == 2  # node 2 hears two transmitters

    def test_max_degree_empty(self):
        with pytest.raises(GraphError):
            max_degree(Graph())

    def test_degree_histogram(self):
        assert degree_histogram(star(3)) == {1: 3, 3: 1}

    def test_degree_histogram_digraph(self):
        g = DiGraph(edges=[(0, 1), (2, 1)])
        assert degree_histogram(g) == {0: 2, 2: 1}
