"""Tests for topology generators, above all the paper's C_n family."""

import itertools
import random

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barbell,
    c_n,
    c_star_n,
    complete,
    diameter,
    grid,
    hypercube,
    is_connected,
    layered_random,
    line,
    random_gnp,
    random_tree,
    ring,
    star,
    unit_disk,
)


class TestCn:
    """The lower-bound family of Section 3.1."""

    def test_structure_matches_paper(self):
        s = {2, 5}
        g = c_n(6, s)
        assert g.num_nodes() == 8  # n + 2 processors
        # E1: source to all of the second layer.
        for i in range(1, 7):
            assert g.has_edge(0, i)
        # E2: exactly S to the sink.
        for i in range(1, 7):
            assert g.has_edge(i, 7) == (i in s)
        # No other edges.
        assert g.num_edges() == 6 + len(s)

    def test_diameter_is_three_for_proper_subset(self):
        g = c_n(8, {3})
        assert diameter(g) == 3

    def test_full_subset_diameter_two(self):
        g = c_n(8, set(range(1, 9)))
        assert diameter(g) == 2

    def test_empty_subset_rejected(self):
        with pytest.raises(GraphError):
            c_n(5, set())

    def test_out_of_range_subset_rejected(self):
        with pytest.raises(GraphError):
            c_n(5, {0})
        with pytest.raises(GraphError):
            c_n(5, {6})

    def test_n_zero_rejected(self):
        with pytest.raises(GraphError):
            c_n(0, {1})

    def test_second_layer_is_independent_set(self):
        g = c_n(10, {1, 5, 9})
        for i, j in itertools.combinations(range(1, 11), 2):
            assert not g.has_edge(i, j)

    def test_source_sink_not_adjacent(self):
        g = c_n(10, {4})
        assert not g.has_edge(0, 11)


class TestCStarN:
    """Section 3.5's family."""

    def test_structure(self):
        g = c_star_n(4, {1, 3}, {6, 8})
        assert g.num_nodes() == 9  # 2n + 1
        for i in range(1, 5):
            assert g.has_edge(0, i)
        # Complete bipartite S x R.
        for i in (1, 3):
            for j in (6, 8):
                assert g.has_edge(i, j)
        assert not g.has_edge(2, 6)
        assert g.num_edges() == 4 + 4

    def test_validation(self):
        with pytest.raises(GraphError):
            c_star_n(4, set(), {6})
        with pytest.raises(GraphError):
            c_star_n(4, {1}, set())
        with pytest.raises(GraphError):
            c_star_n(4, {5}, {6})  # S out of range
        with pytest.raises(GraphError):
            c_star_n(4, {1}, {3})  # R out of range


class TestDeterministicFamilies:
    def test_line(self):
        g = line(5)
        assert g.num_edges() == 4
        assert diameter(g) == 4

    def test_line_single_node(self):
        assert line(1).num_nodes() == 1

    def test_ring(self):
        g = ring(6)
        assert g.num_edges() == 6
        assert all(g.degree(v) == 2 for v in g.nodes)
        assert diameter(g) == 3

    def test_ring_minimum_size(self):
        with pytest.raises(GraphError):
            ring(2)

    def test_grid(self):
        g = grid(3, 4)
        assert g.num_nodes() == 12
        assert g.num_edges() == 3 * 3 + 2 * 4  # vertical + horizontal
        assert diameter(g) == 2 + 3

    def test_complete(self):
        g = complete(6)
        assert g.num_edges() == 15
        assert diameter(g) == 1

    def test_star(self):
        g = star(7)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_hypercube(self):
        g = hypercube(4)
        assert g.num_nodes() == 16
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert diameter(g) == 4

    def test_barbell(self):
        g = barbell(4, 3)
        assert is_connected(g)
        assert g.degree(0) == 3  # inside the first clique

    def test_validation_errors(self):
        with pytest.raises(GraphError):
            line(0)
        with pytest.raises(GraphError):
            grid(0, 3)
        with pytest.raises(GraphError):
            complete(0)
        with pytest.raises(GraphError):
            star(0)
        with pytest.raises(GraphError):
            hypercube(0)
        with pytest.raises(GraphError):
            barbell(1, 2)


class TestRandomFamilies:
    def test_gnp_connected_by_default(self):
        for seed in range(5):
            g = random_gnp(30, 0.02, random.Random(seed))
            assert is_connected(g)

    def test_gnp_without_stitching_can_disconnect(self):
        g = random_gnp(30, 0.0, random.Random(0), connect=False)
        assert g.num_edges() == 0

    def test_gnp_p_one_is_complete(self):
        g = random_gnp(10, 1.0, random.Random(0))
        assert g.num_edges() == 45

    def test_gnp_validation(self):
        with pytest.raises(GraphError):
            random_gnp(0, 0.5, random.Random(0))
        with pytest.raises(GraphError):
            random_gnp(5, 1.5, random.Random(0))

    def test_gnp_reproducible(self):
        a = random_gnp(20, 0.2, random.Random(42))
        b = random_gnp(20, 0.2, random.Random(42))
        assert a == b

    def test_random_tree_is_tree(self):
        g = random_tree(40, random.Random(3))
        assert g.num_edges() == 39
        assert is_connected(g)

    def test_unit_disk_connected_and_positioned(self):
        g = unit_disk(25, 0.4, random.Random(1))
        assert is_connected(g)
        assert len(g.positions) == 25
        for x, y in g.positions.values():
            assert 0 <= x <= 1 and 0 <= y <= 1

    def test_unit_disk_radius_validation(self):
        with pytest.raises(GraphError):
            unit_disk(5, 0.0, random.Random(0))

    def test_unit_disk_geometry_respected(self):
        g = unit_disk(30, 0.3, random.Random(2), connect=False)
        for u, v in g.edges:
            ux, uy = g.positions[u]
            vx, vy = g.positions[v]
            assert (ux - vx) ** 2 + (uy - vy) ** 2 <= 0.3**2 + 1e-12

    def test_layered_random_layers_and_connectivity(self):
        g = layered_random([3, 4, 5], 0.3, random.Random(7))
        assert g.num_nodes() == 12
        assert is_connected(g)
        # No intra-layer or layer-skipping edges.
        offsets = [0, 3, 7, 12]

        def layer_of(v):
            for i in range(3):
                if offsets[i] <= v < offsets[i + 1]:
                    return i
            raise AssertionError

        for u, v in g.edges:
            assert abs(layer_of(u) - layer_of(v)) == 1

    def test_layered_diameter_controlled(self):
        g = layered_random([4] * 10, 0.5, random.Random(5))
        assert diameter(g) >= 9

    def test_layered_validation(self):
        with pytest.raises(GraphError):
            layered_random([], 0.5, random.Random(0))
        with pytest.raises(GraphError):
            layered_random([2, 0], 0.5, random.Random(0))
