"""Tests for Graph and DiGraph."""

import pytest

from repro.errors import EdgeNotFound, GraphError, NodeNotFound
from repro.graphs import DiGraph, Graph


class TestGraphConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes() == 0
        assert g.num_edges() == 0
        assert len(g) == 0

    def test_nodes_and_edges_in_constructor(self):
        g = Graph(nodes=[1, 2], edges=[(2, 3)])
        assert set(g.nodes) == {1, 2, 3}
        assert g.has_edge(2, 3)

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes() == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_parallel_edge_collapses(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges() == 1


class TestGraphQueries:
    def setup_method(self):
        self.g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])

    def test_neighbors(self):
        assert self.g.neighbors(2) == frozenset({0, 1, 3})

    def test_neighbors_missing_node(self):
        with pytest.raises(NodeNotFound):
            self.g.neighbors(99)

    def test_degree(self):
        assert self.g.degree(3) == 1
        assert self.g.degree(2) == 3

    def test_degree_missing_node(self):
        with pytest.raises(NodeNotFound):
            self.g.degree(99)

    def test_edge_symmetry(self):
        assert self.g.has_edge(0, 1) and self.g.has_edge(1, 0)

    def test_edges_listed_once(self):
        assert len(self.g.edges) == self.g.num_edges() == 4

    def test_contains_and_iter(self):
        assert 3 in self.g
        assert set(iter(self.g)) == {0, 1, 2, 3}

    def test_hearers_equal_audible_for_undirected(self):
        assert self.g.hearers(1) == self.g.audible(1) == self.g.neighbors(1)


class TestGraphMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_remove_missing_edge(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(1, 2)

    def test_remove_node_cleans_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.neighbors(1) == frozenset()
        assert g.neighbors(3) == frozenset()

    def test_remove_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFound):
            g.remove_node(1)


class TestGraphCopyAndViews:
    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_node(3)
        assert h.has_edge(2, 3)

    def test_neighbors_snapshot_stable_under_mutation(self):
        g = Graph(edges=[(1, 2)])
        snapshot = g.neighbors(1)
        g.add_edge(1, 3)
        assert snapshot == frozenset({2})

    def test_subgraph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2, 99])
        assert set(sub.nodes) == {1, 2}
        assert sub.has_edge(1, 2)
        assert sub.num_edges() == 1

    def test_relabeled(self):
        g = Graph(edges=[(0, 1)])
        h = g.relabeled({0: "zero", 1: "one"})
        assert h.has_edge("zero", "one")
        assert not h.has_node(0)

    def test_relabeled_requires_injective(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled({0: "x", 1: "x"})

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        assert a == b
        b.add_edge(1, 3)
        assert a != b

    def test_repr_mentions_sizes(self):
        assert "|V|=3" in repr(Graph(edges=[(1, 2), (2, 3)]))


class TestNeighborCaching:
    """``neighbors`` returns a cached frozenset invalidated on mutation."""

    def test_repeated_calls_share_the_snapshot(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.neighbors(1) is g.neighbors(1)

    def test_add_edge_invalidates_both_endpoints(self):
        g = Graph(edges=[(0, 1)])
        g.neighbors(0), g.neighbors(1)
        g.add_edge(1, 2)
        assert g.neighbors(1) == frozenset({0, 2})
        assert g.neighbors(2) == frozenset({1})

    def test_remove_edge_invalidates_both_endpoints(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.neighbors(0), g.neighbors(1)
        g.remove_edge(0, 1)
        assert g.neighbors(0) == frozenset()
        assert g.neighbors(1) == frozenset({2})

    def test_remove_node_invalidates_former_neighbors(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.neighbors(0), g.neighbors(2)
        g.remove_node(1)
        assert g.neighbors(0) == frozenset()
        assert g.neighbors(2) == frozenset()

    def test_version_counter_moves_on_mutation_only(self):
        g = Graph(edges=[(0, 1)])
        before = g.version
        g.neighbors(0)
        assert g.version == before
        g.add_edge(1, 2)
        assert g.version > before

    def test_existing_node_add_keeps_version(self):
        g = Graph(nodes=[1])
        before = g.version
        g.add_node(1)
        assert g.version == before

    def test_copy_cache_is_independent(self):
        g = Graph(edges=[(0, 1)])
        g.neighbors(0)
        h = g.copy()
        h.add_edge(0, 2)
        assert g.neighbors(0) == frozenset({1})
        assert h.neighbors(0) == frozenset({1, 2})

    def test_digraph_in_neighbors_cache_invalidated(self):
        g = DiGraph(edges=[(0, 1)])
        assert g.neighbors_in(1) is g.neighbors_in(1)
        g.add_edge(2, 1)
        assert g.neighbors_in(1) == frozenset({0, 2})
        g.remove_edge(0, 1)
        assert g.neighbors_in(1) == frozenset({2})
        g.remove_node(2)
        assert g.neighbors_in(1) == frozenset()


class TestDiGraph:
    def setup_method(self):
        self.g = DiGraph(edges=[(0, 1), (1, 2), (2, 0), (0, 2)])

    def test_directed_edges(self):
        assert self.g.has_edge(0, 1)
        assert not self.g.has_edge(1, 0)

    def test_in_out_neighbors(self):
        assert self.g.neighbors_out(0) == frozenset({1, 2})
        assert self.g.neighbors_in(0) == frozenset({2})

    def test_in_out_degree(self):
        assert self.g.out_degree(0) == 2
        assert self.g.in_degree(2) == 2

    def test_num_edges_counts_directed(self):
        assert self.g.num_edges() == 4

    def test_remove_edge_one_direction(self):
        self.g.remove_edge(0, 2)
        assert not self.g.has_edge(0, 2)
        assert self.g.has_edge(2, 0)

    def test_remove_node(self):
        self.g.remove_node(2)
        assert not self.g.has_node(2)
        assert self.g.neighbors_out(1) == frozenset()
        assert self.g.neighbors_in(0) == frozenset()

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            self.g.add_edge(3, 3)

    def test_copy_independent(self):
        h = self.g.copy()
        h.add_edge(5, 6)
        assert not self.g.has_node(5)
        assert h.neighbors_in(6) == frozenset({5})

    def test_hearers_is_out_audible_is_in(self):
        assert self.g.hearers(0) == frozenset({1, 2})
        assert self.g.audible(0) == frozenset({2})

    def test_graph_and_digraph_not_equal(self):
        a = Graph(edges=[(0, 1)])
        b = DiGraph(edges=[(0, 1), (1, 0)])
        assert (a == b) is not True
