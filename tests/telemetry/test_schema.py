"""Tests for the telemetry event schema contract."""

from repro.telemetry.schema import (
    KINDS,
    SCHEMA,
    SCHEMA_VERSION,
    validate_line,
    validate_log_lines,
    validate_record,
)


class TestValidateRecord:
    def test_valid_minimal_records(self):
        assert not validate_record({"kind": "fault", "ts": 1.0, "slot": 3})
        assert not validate_record(
            {"kind": "phase", "ts": 1.0, "proto": "decay", "node": 0, "index": 0, "slot": 5}
        )

    def test_extra_fields_are_allowed(self):
        record = {"kind": "counter", "ts": 1.0, "name": "x", "value": 1, "anything": "goes"}
        assert not validate_record(record)

    def test_missing_kind_and_ts(self):
        errors = validate_record({})
        assert any("kind" in e for e in errors)
        assert any("ts" in e for e in errors)

    def test_unknown_kind(self):
        errors = validate_record({"kind": "mystery", "ts": 1.0})
        assert any("unknown kind" in e for e in errors)

    def test_missing_required_fields_named(self):
        errors = validate_record({"kind": "run_end", "ts": 1.0, "run": "r1"})
        assert len(errors) == 1
        for field in ("slots", "wall_s", "transmissions", "collisions", "deliveries"):
            assert field in errors[0]

    def test_numeric_fields_enforced(self):
        errors = validate_record(
            {"kind": "fault", "ts": 1.0, "slot": "three"}
        )
        assert any("must be a number" in e for e in errors)

    def test_bool_is_not_a_number(self):
        errors = validate_record({"kind": "fault", "ts": 1.0, "slot": True})
        assert any("must be a number" in e for e in errors)

    def test_non_object_rejected(self):
        assert validate_record([1, 2, 3])

    def test_every_kind_has_requirements(self):
        assert SCHEMA == f"repro-telemetry/{SCHEMA_VERSION}"
        for kind, required in KINDS.items():
            assert isinstance(required, frozenset), kind


class TestValidateLines:
    def test_blank_lines_are_fine(self):
        assert validate_line("") == []
        assert validate_line("   \n") == []

    def test_torn_json_reported(self):
        errors = validate_line('{"kind": "fault", "ts":')
        assert any("not valid JSON" in e for e in errors)

    def test_log_errors_carry_line_numbers(self):
        lines = [
            '{"kind": "fault", "ts": 1.0, "slot": 3}',
            '{"kind": "nope", "ts": 1.0}',
            "not json",
        ]
        errors = validate_log_lines(lines)
        assert any(e.startswith("line 2:") for e in errors)
        assert any(e.startswith("line 3:") for e in errors)
        assert not any(e.startswith("line 1:") for e in errors)


class TestProvenanceKind:
    def test_prov_is_a_known_kind(self):
        assert "prov" in KINDS
        assert KINDS["prov"] == frozenset({"slot", "node", "outcome"})

    def test_valid_prov_record(self):
        assert not validate_record(
            {"kind": "prov", "ts": 1.0, "run": "r1", "slot": 3, "node": 1,
             "outcome": "collision", "tx": [0, 2]}
        )

    def test_prov_missing_outcome_flagged(self):
        errors = validate_record({"kind": "prov", "ts": 1.0, "slot": 3, "node": 1})
        assert any("outcome" in e for e in errors)
