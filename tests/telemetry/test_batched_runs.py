"""Batched (vectorized) campaigns in the telemetry stream.

The batch backend advances many trials per array op but must still
present *per-trial* runs to observability: one ``run_begin``/``run_end``
pair per seed, with the fields the conformance monitor's SLO gates read
(``informed``, ``last_reception_slot``) identical to what the reference
engine would have emitted for the same seed.  Otherwise switching
backends would silently change what the Theorem 1/Theorem 4 gates see.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import random_gnp
from repro.monitor.conformance import (
    ConformanceMonitor,
    MonitorConfig,
    default_checkers,
)
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.rng import seed_sequence, spawn
from repro.sim.vectorized import run_decay_broadcast_batch
from repro.telemetry.core import Telemetry, activate, set_active
from repro.telemetry.schema import validate_record

SEEDS = list(seed_sequence(99, 6, "tel-batch"))

#: run_end fields that carry run *outcomes* (vs timing, which differs).
OUTCOME_FIELDS = (
    "slots",
    "slots_run",
    "transmissions",
    "collisions",
    "deliveries",
    "jam_transmissions",
    "informed",
    "last_reception_slot",
)


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    previous = set_active(None)
    yield
    set_active(previous)


def _graph():
    return random_gnp(18, 0.3, spawn(3, "tel"))


def _campaign_records(backend):
    graph = _graph()
    recorder = Telemetry.buffered()
    with activate(recorder):
        if backend == "numpy":
            run_decay_broadcast_batch(graph, 0, SEEDS)
        else:
            for seed in SEEDS:
                run_decay_broadcast(graph, 0, seed=seed)
    return recorder.drain()


def _runs_by_seed(records):
    begins = {r["run"]: r for r in records if r["kind"] == "run_begin"}
    paired = {}
    for record in records:
        if record["kind"] == "run_end":
            begin = begins[record["run"]]
            paired[begin["seed"]] = (begin, record)
    return paired


def test_batched_campaign_emits_one_run_pair_per_trial():
    records = _campaign_records("numpy")
    begins = [r for r in records if r["kind"] == "run_begin"]
    ends = [r for r in records if r["kind"] == "run_end"]
    assert len(begins) == len(SEEDS)
    assert len(ends) == len(SEEDS)
    assert {r["seed"] for r in begins} == set(SEEDS)
    assert {r["run"] for r in ends} == {r["run"] for r in begins}
    assert all(r["backend"] == "numpy" for r in begins)


def test_batched_records_validate_against_the_schema():
    for record in _campaign_records("numpy"):
        validate_record(record)


def test_run_end_outcomes_identical_to_reference_per_seed():
    reference = _runs_by_seed(_campaign_records("reference"))
    batched = _runs_by_seed(_campaign_records("numpy"))
    assert set(batched) == set(reference)
    for seed in SEEDS:
        ref_begin, ref_end = reference[seed]
        vec_begin, vec_end = batched[seed]
        for field in ("nodes", "edges", "seed", "initiators", "max_slots"):
            assert vec_begin[field] == ref_begin[field], field
        for field in OUTCOME_FIELDS:
            assert vec_end.get(field) == ref_end.get(field), (seed, field)


def test_monitor_slo_gates_judge_both_backends_identically():
    """Regression: without per-trial ``run_end`` + ``last_reception_slot``
    the Theorem 1 / Theorem 4 gates would see nothing (or garbage) from
    batched campaigns."""
    verdicts = {}
    for backend in ("reference", "numpy"):
        monitor = ConformanceMonitor(default_checkers(MonitorConfig(epsilon=0.1)))
        for record in _campaign_records(backend):
            monitor.feed(record)
        monitor.finish()
        tallies = {
            checker.rule: (checker.trials, checker.successes, checker.fired)
            for checker in monitor.checkers
            if hasattr(checker, "trials")
        }
        verdicts[backend] = (tallies, [alert.rule for alert in monitor.alerts])
    assert verdicts["numpy"] == verdicts["reference"]
    tallies, _ = verdicts["numpy"]
    # The gates actually saw every trial, not an empty stream.
    assert all(trials == len(SEEDS) for trials, _, _ in tallies.values())
