"""Campaign telemetry from :func:`repro.parallel.resilient_map`.

The invariants: telemetry never changes results or journal contents;
serial and pool paths both emit schema-valid campaign/chunk/progress
records; pool workers' own events are shipped back and merged into the
parent's stream tagged with their chunk index.
"""

import json

import pytest

from repro.parallel import resilient_map
from repro.telemetry.core import Telemetry, activate, counter, set_active
from repro.telemetry.schema import validate_record


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    previous = set_active(None)
    yield
    set_active(previous)


def _square(x):
    return x * x


def _square_counting(x):
    # Emits through the ambient recorder: in a pool worker this is the
    # buffered per-chunk recorder installed by _run_chunk_timed.
    counter("work", 1, item=x)
    return x * x


ITEMS = list(range(12))
EXPECTED = [x * x for x in ITEMS]


class TestSerialCampaign:
    def test_events_and_results(self):
        rec = Telemetry.buffered()
        with activate(rec):
            out = resilient_map(_square, ITEMS, jobs=1, chunksize=4)
        assert out == EXPECTED
        records = rec.drain()
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "campaign_begin"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("chunk") == 3
        assert all(not validate_record(r) for r in records)
        begin = records[0]
        assert begin["items"] == 12 and begin["chunks"] == 3 and begin["jobs"] == 1
        end = records[-1]
        assert end["retries"] == 0 and end["timeouts"] == 0

    def test_heartbeat_every_chunk_at_zero_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS_SECS", "0")
        rec = Telemetry.buffered()
        with activate(rec):
            resilient_map(_square, ITEMS, jobs=1, chunksize=4)
        progress = [r for r in rec.drain() if r["kind"] == "progress"]
        assert len(progress) == 3
        assert [p["done"] for p in progress] == [1, 2, 3]
        assert progress[-1]["done"] == progress[-1]["total"] == 3
        assert all(not validate_record(p) for p in progress)

    def test_final_chunk_always_heartbeats(self):
        rec = Telemetry.buffered()
        with activate(rec):
            resilient_map(_square, ITEMS, jobs=1, chunksize=4)
        progress = [r for r in rec.drain() if r["kind"] == "progress"]
        assert progress and progress[-1]["done"] == 3

    def test_no_recorder_no_events(self):
        assert resilient_map(_square, ITEMS, jobs=1, chunksize=4) == EXPECTED


class TestPoolCampaign:
    def test_chunk_records_carry_worker_details(self):
        rec = Telemetry.buffered()
        with activate(rec):
            out = resilient_map(_square, ITEMS, jobs=2, chunksize=4)
        assert out == EXPECTED
        records = rec.drain()
        chunks = [r for r in records if r["kind"] == "chunk"]
        assert len(chunks) == 3
        assert sorted(c["index"] for c in chunks) == [0, 1, 2]
        for chunk in chunks:
            assert not validate_record(chunk)
            assert chunk["mode"] == "pool"
            assert chunk["queue_s"] >= 0.0
            assert chunk["wall_s"] >= 0.0
            assert chunk["pid"] > 0
            assert chunk["retries"] == 0 and chunk["timeouts"] == 0

    def test_worker_events_shipped_back_and_tagged(self):
        rec = Telemetry.buffered()
        with activate(rec):
            out = resilient_map(_square_counting, ITEMS, jobs=2, chunksize=4)
        assert out == EXPECTED
        records = rec.drain()
        counters = [r for r in records if r["kind"] == "counter"]
        assert len(counters) == 12  # one per item, emitted inside workers
        assert {c["chunk"] for c in counters} == {0, 1, 2}
        assert sorted(c["item"] for c in counters) == ITEMS

    def test_results_identical_with_and_without_telemetry(self):
        plain = resilient_map(_square, ITEMS, jobs=2, chunksize=4)
        rec = Telemetry.buffered()
        with activate(rec):
            instrumented = resilient_map(_square, ITEMS, jobs=2, chunksize=4)
        assert plain == instrumented == EXPECTED

    def test_journal_contents_unchanged_by_telemetry(self, tmp_path):
        plain_journal = tmp_path / "plain.jsonl"
        instrumented_journal = tmp_path / "instrumented.jsonl"
        resilient_map(_square, ITEMS, jobs=2, chunksize=4, journal=plain_journal)
        rec = Telemetry.buffered()
        with activate(rec):
            resilient_map(
                _square, ITEMS, jobs=2, chunksize=4, journal=instrumented_journal
            )
        def chunk_lines(path):
            return [
                line
                for line in path.read_text().splitlines()
                if json.loads(line).get("kind") == "chunk"
            ]
        assert chunk_lines(plain_journal) == chunk_lines(instrumented_journal)

    def test_resumed_campaign_reports_restored_chunks(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        resilient_map(_square, ITEMS, jobs=1, chunksize=4, journal=journal)
        rec = Telemetry.buffered()
        with activate(rec):
            out = resilient_map(
                _square, ITEMS, jobs=1, chunksize=4, journal=journal, resume=True
            )
        assert out == EXPECTED
        begin = [r for r in rec.drain() if r["kind"] == "campaign_begin"][0]
        assert begin["resumed_chunks"] == 3
