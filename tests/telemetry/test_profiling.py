"""Tests for the cProfile hooks behind the CLI's ``--profile`` flag."""

from repro.telemetry.core import Telemetry, activate
from repro.telemetry.profiling import hotspots, profile_call
from repro.telemetry.schema import validate_record


class _FakeStats:
    """A pstats.Stats stand-in with hand-picked timing tuples."""

    def __init__(self, rows):
        # func key -> (cc, nc, tt, ct, callers)
        self.stats = rows


def _workload(n):
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(_workload, 1000)
        assert result == _workload(1000)
        assert "_workload" in report
        assert "cumulative" in report

    def test_emits_profile_event_when_active(self):
        rec = Telemetry.buffered()
        with activate(rec):
            profile_call(_workload, 100, top=5)
        records = [r for r in rec.drain() if r["kind"] == "profile"]
        assert len(records) == 1
        record = records[0]
        assert not validate_record(record)
        assert len(record["top"]) <= 5
        rows = record["top"]
        assert all({"func", "calls", "tottime_s", "cumtime_s"} <= row.keys() for row in rows)
        # Sorted by cumulative time, descending.
        cums = [row["cumtime_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)

    def test_no_event_when_disabled(self):
        rec = Telemetry.buffered()
        profile_call(_workload, 100)
        assert rec.drain() == []


class TestHotspotsSort:
    """Regression tests: hotspots() once sorted by the raw stats tuple
    (call counts first) instead of the requested time column, so the
    'top hotspots' were really the most-called functions."""

    ROWS = {
        ("busy.py", 1, "hot_but_rarely_called"): (1, 1, 9.0, 9.5, {}),
        ("chatty.py", 2, "called_constantly"): (5000, 5000, 0.1, 0.2, {}),
        ("parent.py", 3, "thin_wrapper"): (2, 2, 0.05, 12.0, {}),
    }

    def test_cumulative_sorts_by_cumtime_not_call_count(self):
        rows = hotspots(_FakeStats(self.ROWS), top=3)
        assert [row["func"] for row in rows] == [
            "parent.py:3(thin_wrapper)",
            "busy.py:1(hot_but_rarely_called)",
            "chatty.py:2(called_constantly)",
        ]

    def test_tottime_sort(self):
        rows = hotspots(_FakeStats(self.ROWS), top=2, sort="tottime")
        assert rows[0]["func"] == "busy.py:1(hot_but_rarely_called)"
        assert rows[0]["tottime_s"] == 9.0

    def test_pstats_aliases_accepted(self):
        by_cum = hotspots(_FakeStats(self.ROWS), sort="cumtime")
        by_time = hotspots(_FakeStats(self.ROWS), sort="time")
        assert by_cum[0]["func"] == "parent.py:3(thin_wrapper)"
        assert by_time[0]["func"] == "busy.py:1(hot_but_rarely_called)"

    def test_unknown_sort_falls_back_to_cumulative(self):
        rows = hotspots(_FakeStats(self.ROWS), sort="nonsense")
        assert rows[0]["func"] == "parent.py:3(thin_wrapper)"

    def test_top_truncates_after_sorting(self):
        rows = hotspots(_FakeStats(self.ROWS), top=1)
        assert len(rows) == 1
        assert rows[0]["cumtime_s"] == 12.0
