"""Tests for the cProfile hooks behind the CLI's ``--profile`` flag."""

from repro.telemetry.core import Telemetry, activate
from repro.telemetry.profiling import profile_call
from repro.telemetry.schema import validate_record


def _workload(n):
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(_workload, 1000)
        assert result == _workload(1000)
        assert "_workload" in report
        assert "cumulative" in report

    def test_emits_profile_event_when_active(self):
        rec = Telemetry.buffered()
        with activate(rec):
            profile_call(_workload, 100, top=5)
        records = [r for r in rec.drain() if r["kind"] == "profile"]
        assert len(records) == 1
        record = records[0]
        assert not validate_record(record)
        assert len(record["top"]) <= 5
        rows = record["top"]
        assert all({"func", "calls", "tottime_s", "cumtime_s"} <= row.keys() for row in rows)
        # Sorted by cumulative time, descending.
        cums = [row["cumtime_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)

    def test_no_event_when_disabled(self):
        rec = Telemetry.buffered()
        profile_call(_workload, 100)
        assert rec.drain() == []
