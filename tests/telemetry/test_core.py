"""Tests for the telemetry recorder and the ambient registry."""

import json
import os

import pytest

from repro.telemetry import core
from repro.telemetry.core import (
    Telemetry,
    activate,
    config_fingerprint,
    counter,
    event,
    gauge,
    get_active,
    git_sha,
    phase,
    set_active,
)
from repro.telemetry.schema import validate_record


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    """Each test starts (and ends) with telemetry disabled."""
    previous = set_active(None)
    yield
    set_active(previous)


class TestBufferedRecorder:
    def test_emit_and_drain(self):
        rec = Telemetry.buffered()
        rec.emit("gauge", name="x", value=1)
        records = rec.drain()
        assert len(records) == 1
        assert records[0]["kind"] == "gauge"
        assert "ts" in records[0]
        assert rec.drain() == []

    def test_run_scope_tags_records(self):
        rec = Telemetry.buffered()
        run_id = rec.begin_run(nodes=4, edges=3, seed=0)
        rec.counter("ticks")
        rec.end_run(slots=1, wall_s=0.0, transmissions=0, collisions=0, deliveries=0)
        rec.counter("after")
        begin, tick, end, after = rec.drain()
        assert run_id == "r1"
        assert begin["run"] == tick["run"] == end["run"] == "r1"
        assert "run" not in after
        assert rec.begin_run(nodes=1, edges=0, seed=0) == "r2"

    def test_span_records_duration(self):
        rec = Telemetry.buffered()
        with rec.span("setup", detail="x"):
            pass
        (record,) = rec.drain()
        assert record["kind"] == "span"
        assert record["name"] == "setup"
        assert record["dur_s"] >= 0.0
        assert not validate_record(record)

    def test_write_record_merges_preformed(self):
        rec = Telemetry.buffered()
        rec.write_record({"kind": "counter", "ts": 1.0, "name": "n", "value": 2})
        assert rec.drain()[0]["value"] == 2

    def test_fork_guard_drops_foreign_pid(self):
        rec = Telemetry.buffered()
        rec._pid = os.getpid() + 1  # simulate a forked child's inherited recorder
        rec.emit("counter", name="x", value=1)
        rec.write_record({"kind": "counter", "ts": 0.0, "name": "x", "value": 1})
        assert rec.drain() == []

    def test_closed_recorder_is_silent(self):
        rec = Telemetry.buffered()
        rec.close()
        rec.emit("counter", name="x", value=1)
        assert rec.drain() == []

    def test_slot_batch_validated(self):
        with pytest.raises(ValueError):
            Telemetry.buffered(slot_batch=0)


class TestFileRecorder:
    def test_streams_json_lines(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with Telemetry.to_path(log) as rec:
            rec.counter("a", 1)
            rec.gauge("b", 2.5)
        lines = log.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["counter", "gauge"]

    def test_flushes_as_it_goes(self, tmp_path):
        log = tmp_path / "events.jsonl"
        rec = Telemetry.to_path(log)
        rec.counter("a", 1)
        # Readable before close: a killed campaign leaves a usable log.
        assert json.loads(log.read_text().splitlines()[0])["name"] == "a"
        rec.close()

    def test_unserializable_values_fall_back_to_repr(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with Telemetry.to_path(log) as rec:
            rec.emit("counter", name="x", value=1, payload=object())
        record = json.loads(log.read_text())
        assert record["payload"].startswith("<object object")

    def test_manifest_record_and_sidecar(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with Telemetry.to_path(log) as rec:
            manifest = rec.write_manifest(
                command="gap", seed=7, config={"reps": 2, "quick": True}
            )
        assert manifest["command"] == "gap"
        assert manifest["seed"] == 7
        assert manifest["config_fingerprint"] == config_fingerprint(
            {"reps": 2, "quick": True}
        )
        assert manifest["package_version"]
        record = json.loads(log.read_text().splitlines()[0])
        assert record["kind"] == "manifest"
        assert not validate_record(record)
        sidecar = tmp_path / "events.jsonl.manifest.json"
        assert json.loads(sidecar.read_text())["seed"] == 7


class TestAmbientRegistry:
    def test_helpers_are_noops_when_disabled(self):
        # Must not raise, must not require a recorder.
        phase("decay", node=0, index=0, slot=0)
        counter("x")
        gauge("y", 1.0)
        event("fault", slot=3)
        assert get_active() is None

    def test_activate_installs_and_restores(self):
        outer = Telemetry.buffered()
        inner = Telemetry.buffered()
        with activate(outer):
            assert get_active() is outer
            with activate(inner):
                counter("x")
                assert get_active() is inner
            assert get_active() is outer
        assert get_active() is None
        assert inner.drain()[0]["name"] == "x"
        assert outer.drain() == []

    def test_activate_restores_on_error(self):
        rec = Telemetry.buffered()
        with pytest.raises(RuntimeError):
            with activate(rec):
                raise RuntimeError("boom")
        assert get_active() is None

    def test_helpers_route_to_active(self):
        rec = Telemetry.buffered()
        with activate(rec):
            phase("decay-broadcast", node=3, index=1, slot=9, start_slot=8)
            gauge("slots_per_sec", 100.0)
        records = rec.drain()
        assert [r["kind"] for r in records] == ["phase", "gauge"]
        assert all(not validate_record(r) for r in records)

    def test_disabled_gate_is_one_global_load(self):
        # The documented no-op contract: the helper reads the module
        # global once and returns; no recorder machinery is touched.
        assert core._ACTIVE is None
        counter("never-recorded", 10**6)


class TestManifestIngredients:
    def test_fingerprint_is_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_fingerprint_handles_non_json_values(self):
        digest = config_fingerprint({"path": object()})
        assert len(digest) == 16

    def test_git_sha_in_this_checkout(self):
        sha = git_sha()
        assert sha is not None
        assert len(sha) == 40
        assert all(c in "0123456789abcdef" for c in sha)

    def test_git_sha_outside_a_checkout(self, tmp_path):
        assert git_sha(tmp_path / "nowhere") is None
