"""Engine and protocol instrumentation: spans, markers, and gating.

Covers the observability contract end-to-end: the engine emits
run/slot-batch/fault records when a recorder is active and nothing at
all otherwise; the protocols emit phase markers (Decay phase index,
BFS layer); and — critically — enabling telemetry never turns on
tracing, and ``record_trace=False`` allocates no :class:`SlotRecord`.
"""

import pytest

import repro.sim.engine as engine_mod
from repro.graphs import generators, line, star
from repro.protocols import run_bfs, run_decay_broadcast
from repro.sim import (
    Context,
    EdgeFault,
    Engine,
    FaultSchedule,
    NodeProgram,
    Receive,
    Transmit,
)
from repro.telemetry.core import Telemetry, activate, set_active
from repro.telemetry.schema import validate_record


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    previous = set_active(None)
    yield
    set_active(previous)


class Beacon(NodeProgram):
    def act(self, ctx: Context):
        return Transmit("b")


class Listener(NodeProgram):
    def act(self, ctx: Context):
        return Receive()


def _engine(graph, **kwargs):
    programs = {}
    for i, node in enumerate(graph.nodes):
        programs[node] = Beacon() if i == 0 else Listener()
    return Engine(graph, programs, initiators={next(iter(graph.nodes))}, **kwargs)


class TestEngineSpans:
    def test_run_begin_and_end_emitted(self):
        rec = Telemetry.buffered()
        with activate(rec):
            engine = _engine(line(4))
        engine.run(10)
        records = rec.drain()
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "run_end"
        assert all(not validate_record(r) for r in records)
        begin = records[0]
        assert begin["nodes"] == 4 and begin["edges"] == 3 and begin["seed"] == 0
        end = records[-1]
        assert end["slots"] == 10
        assert end["transmissions"] == engine.metrics.transmissions
        assert end["run"] == begin["run"] == "r1"

    def test_slot_batch_records_at_interval(self):
        rec = Telemetry.buffered(slot_batch=8)
        engine = _engine(line(3), telemetry=rec)
        engine.run(30)
        records = rec.drain()
        batches = [r for r in records if r["kind"] == "slot_batch"]
        gauges = [r for r in records if r["kind"] == "gauge"]
        assert len(batches) == 3  # slots 8, 16, 24
        assert [b["slot"] for b in batches] == [8, 16, 24]
        assert all(b["slots"] == 8 for b in batches)
        assert all(b["run"] == "r1" for b in batches)
        assert len(gauges) == len(batches)
        assert all(g["name"] == "slots_per_sec" for g in gauges)
        assert all(not validate_record(r) for r in records)

    def test_explicit_recorder_beats_ambient(self):
        ambient = Telemetry.buffered()
        explicit = Telemetry.buffered()
        with activate(ambient):
            engine = _engine(line(3), telemetry=explicit)
        engine.run(4)
        assert ambient.drain() == []
        assert any(r["kind"] == "run_end" for r in explicit.drain())

    def test_snapshotted_at_construction(self):
        rec = Telemetry.buffered()
        engine = _engine(line(3))  # no ambient recorder here
        with activate(rec):
            engine.run(4)  # activating later must not retrofit the engine
        assert rec.drain() == []

    def test_fault_events(self):
        rec = Telemetry.buffered()
        schedule = FaultSchedule(edge_faults=[EdgeFault(slot=2, u=0, v=1)])
        engine = _engine(line(4), faults=schedule, telemetry=rec)
        engine.run(6)
        faults = [r for r in rec.drain() if r["kind"] == "fault"]
        assert len(faults) == 1
        assert faults[0]["slot"] == 2
        assert faults[0]["edges_cut"] == 1
        assert not validate_record(faults[0])

    def test_collisions_per_node_mirrors_total(self):
        # Star center hears every leaf: collisions are inevitable.
        rec = Telemetry.buffered()
        g = star(6)
        programs = {node: Beacon() for node in g.nodes}
        programs[0] = Listener()
        engine = Engine(g, programs, initiators=set(g.nodes) - {0}, telemetry=rec)
        engine.run(5)
        metrics = engine.metrics
        assert metrics.collisions > 0
        assert sum(metrics.collisions_per_node.values()) == metrics.collisions
        end = [r for r in rec.drain() if r["kind"] == "run_end"][0]
        assert end["collisions"] == metrics.collisions


class TestTraceGating:
    def test_no_slot_records_without_tracing(self, monkeypatch):
        """record_trace=False must never allocate a SlotRecord."""

        def _forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("SlotRecord allocated with record_trace=False")

        monkeypatch.setattr(engine_mod, "SlotRecord", _forbidden)
        engine = _engine(line(4), record_trace=False)
        result = engine.run(10)
        assert result.trace is None

    def test_telemetry_does_not_enable_tracing(self, monkeypatch):
        """An active recorder must not implicitly turn the trace on."""

        def _forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("telemetry implicitly enabled tracing")

        monkeypatch.setattr(engine_mod, "SlotRecord", _forbidden)
        rec = Telemetry.buffered()
        with activate(rec):
            result = run_decay_broadcast(line(5), 0, seed=1)
        assert result.trace is None
        assert any(r["kind"] == "run_end" for r in rec.drain())

    def test_tracing_still_works_with_telemetry(self):
        rec = Telemetry.buffered()
        with activate(rec):
            result = run_decay_broadcast(line(4), 0, seed=1, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.slots

    def test_disabled_telemetry_emits_nothing(self):
        engine = _engine(line(4))
        assert engine._telemetry is None
        engine.run(10)  # would raise if it touched a recorder


class TestProtocolPhaseMarkers:
    def test_decay_broadcast_markers(self):
        rec = Telemetry.buffered()
        with activate(rec):
            result = run_decay_broadcast(generators.ring(8), 0, seed=3)
        markers = [r for r in rec.drain() if r["kind"] == "phase"]
        assert markers, "no phase markers emitted"
        assert {m["proto"] for m in markers} == {"decay-broadcast"}
        k = next(iter(result.programs.values())).k
        for marker in markers:
            assert not validate_record(marker)
            # Aligned phases: each Decay spans exactly k slots.
            assert marker["slot"] - marker["start_slot"] + 1 == k
            assert marker["k"] == k
        # The source starts at phase index 0 in slot k-1.
        indices = sorted({m["index"] for m in markers})
        assert indices[0] == 0

    def test_bfs_markers_cover_decays_and_layers(self):
        rec = Telemetry.buffered()
        with activate(rec):
            result = run_bfs(generators.grid(3, 3), 0, seed=2)
        records = rec.drain()
        decays = [r for r in records if r["kind"] == "phase" and r["proto"] == "decay-bfs"]
        layers = [r for r in records if r["kind"] == "phase" and r["proto"] == "bfs-layer"]
        assert decays and layers
        assert all(not validate_record(r) for r in decays + layers)
        labels = result.node_results()
        # One bfs-layer marker per node that labelled itself (non-root).
        labelled = [n for n, d in labels.items() if d is not None and n != 0]
        assert len(layers) == len(labelled)
        assert {m["index"] for m in layers} == {labels[n] for n in labelled}

    def test_markers_silent_without_recorder(self):
        result = run_decay_broadcast(generators.ring(6), 0, seed=3)
        assert result.broadcast_completion_slot(source=0) is not None
