"""Tests for the event-log summarizer behind ``python -m repro telemetry``."""

import json

import pytest

from repro.errors import ExperimentError
from repro.telemetry.summary import (
    read_records,
    render_summary,
    summarize,
    summary_json,
    validate_log,
)


def _write_log(path, records, *, torn_tail=False):
    with path.open("w", encoding="utf-8") as stream:
        for record in records:
            stream.write(json.dumps(record) + "\n")
        if torn_tail:
            stream.write('{"kind": "counter", "ts"')


SAMPLE = [
    {"kind": "manifest", "schema": "repro-telemetry/1", "version": 1, "created": 1.0,
     "host": "h", "python": "3", "package_version": "1.0.0", "ts": 1.0,
     "command": "gap", "seed": 5, "config_fingerprint": "abcd"},
    {"kind": "run_begin", "ts": 1.0, "run": "r1", "nodes": 4, "edges": 3, "seed": 5},
    {"kind": "phase", "ts": 1.0, "run": "r1", "proto": "decay-broadcast",
     "node": 0, "index": 0, "slot": 7, "start_slot": 0},
    {"kind": "phase", "ts": 1.0, "run": "r1", "proto": "decay-broadcast",
     "node": 1, "index": 0, "slot": 9, "start_slot": 2},
    {"kind": "phase", "ts": 1.0, "run": "r1", "proto": "bfs-layer",
     "node": 1, "index": 1, "slot": 9},
    {"kind": "run_end", "ts": 1.0, "run": "r1", "slots": 10, "wall_s": 0.5,
     "transmissions": 6, "collisions": 2, "deliveries": 3},
    {"kind": "run_end", "ts": 1.0, "run": "r2", "slots": 30, "wall_s": 0.5,
     "transmissions": 4, "collisions": 1, "deliveries": 2},
    {"kind": "chunk", "ts": 1.0, "index": 0, "size": 5, "wall_s": 0.2,
     "queue_s": 0.1, "pid": 11, "retries": 1, "timeouts": 0},
    {"kind": "chunk", "ts": 1.0, "index": 1, "size": 5, "wall_s": 0.4,
     "queue_s": 0.3, "pid": 12, "retries": 0, "timeouts": 2},
    {"kind": "fault", "ts": 1.0, "slot": 3, "edges_cut": 2},
    {"kind": "counter", "ts": 1.0, "name": "ticks", "value": 2},
    {"kind": "counter", "ts": 1.0, "name": "ticks", "value": 3},
    {"kind": "gauge", "ts": 1.0, "name": "slots_per_sec", "value": 100.0},
    {"kind": "gauge", "ts": 1.0, "name": "slots_per_sec", "value": 50.0},
    {"kind": "span", "ts": 1.0, "name": "setup", "dur_s": 0.25},
    {"kind": "campaign_end", "ts": 1.0, "wall_s": 1.5, "chunks": 2,
     "retries": 1, "timeouts": 2},
    {"kind": "progress", "ts": 1.0, "done": 2, "total": 2, "elapsed_s": 1.5},
]


class TestReadRecords:
    def test_reads_all_valid_records(self, tmp_path):
        log = tmp_path / "log.jsonl"
        _write_log(log, SAMPLE)
        assert len(read_records(log)) == len(SAMPLE)

    def test_torn_tail_skipped_by_default(self, tmp_path):
        log = tmp_path / "log.jsonl"
        _write_log(log, SAMPLE, torn_tail=True)
        assert len(read_records(log)) == len(SAMPLE)

    def test_strict_treats_torn_tail_as_incomplete(self, tmp_path):
        # A final line with no newline is a record the writer is still
        # mid-flush on (every writer emits "<json>\n"): strict mode
        # skips it as incomplete rather than erroring, so a live log
        # can be read while the campaign is running.
        log = tmp_path / "log.jsonl"
        _write_log(log, SAMPLE, torn_tail=True)
        assert len(read_records(log, strict=True)) == len(SAMPLE)

    def test_strict_still_raises_on_interior_corruption(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('not json\n{"kind": "counter", "ts": 1.0, '
                       '"name": "x", "value": 1}\n', encoding="utf-8")
        with pytest.raises(ExperimentError):
            read_records(log, strict=True)

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            read_records(tmp_path / "nope.jsonl")
        with pytest.raises(ExperimentError):
            validate_log(tmp_path / "nope.jsonl")

    def test_validate_log_flags_bad_lines(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('{"kind": "mystery", "ts": 1.0}\n')
        errors = validate_log(log)
        assert errors and "line 1" in errors[0]


class TestSummarize:
    def test_runs_merge_via_runmetrics(self):
        summary = summarize(SAMPLE)
        runs = summary["runs"]
        assert runs["count"] == 2
        assert runs["slots"] == 40
        assert runs["transmissions"] == 10
        assert runs["collisions"] == 3
        assert runs["slots_per_sec"] == pytest.approx(40.0)

    def test_phases_grouped_by_proto_and_index(self):
        summary = summarize(SAMPLE)
        rows = summary["phases"]["decay-broadcast"]
        assert rows[0]["index"] == 0
        assert rows[0]["count"] == 2
        assert rows[0]["slot_min"] == 7
        assert rows[0]["slot_max"] == 9
        assert rows[0]["mean_length"] == pytest.approx(8.0)
        assert summary["phases"]["bfs-layer"][0]["count"] == 1

    def test_chunks_aggregated(self):
        summary = summarize(SAMPLE)
        chunks = summary["chunks"]
        assert chunks["count"] == 2
        assert chunks["items"] == 10
        assert chunks["workers"] == 2
        assert chunks["retries"] == 1
        assert chunks["timeouts"] == 2
        assert chunks["queue_s"]["max"] == pytest.approx(0.3)

    def test_metrics_and_campaigns(self):
        summary = summarize(SAMPLE)
        assert summary["counters"]["ticks"]["total"] == 5
        assert summary["gauges"]["slots_per_sec"]["last"] == 50.0
        assert summary["gauges"]["slots_per_sec"]["max"] == 100.0
        assert summary["spans"]["setup"]["count"] == 1
        assert summary["campaigns"]["count"] == 1
        assert summary["campaigns"]["timeouts"] == 2
        assert summary["last_progress"]["done"] == 2
        assert summary["faults"] == 1

    def test_empty_stream(self):
        summary = summarize([])
        assert summary["records"] == 0
        assert summary["runs"]["count"] == 0
        assert summary["last_progress"] is None


class TestRendering:
    def test_render_contains_all_sections(self):
        text = render_summary(summarize(SAMPLE))
        assert "Telemetry log overview" in text
        assert "Run manifest(s)" in text
        assert "Engine runs (merged RunMetrics)" in text
        assert "decay-broadcast" in text
        assert "Parallel chunks" in text
        assert "Spans" in text

    def test_render_empty_log(self):
        assert "Telemetry log overview" in render_summary(summarize([]))

    def test_summary_json_round_trips(self):
        payload = json.loads(summary_json(summarize(SAMPLE)))
        assert payload["runs"]["slots"] == 40


FLEET_SAMPLE = [
    {"kind": "fabric_begin", "ts": 0.0, "spec": "slow-squares", "workers": 2,
     "chunks": 2},
    {"kind": "worker", "ts": 0.1, "event": "worker_start", "worker": "w0"},
    {"kind": "lease", "ts": 0.2, "event": "claim", "worker": "w0",
     "index": 0, "fence": 1},
    {"kind": "lease", "ts": 0.3, "event": "claim", "worker": "w1",
     "index": 1, "fence": 1},
    {"kind": "lease", "ts": 0.4, "event": "takeover", "worker": "w0",
     "index": 1, "fence": 2},
    {"kind": "lease", "ts": 0.5, "event": "fence_reject", "worker": "w1",
     "index": 1, "fence": 1},
    {"kind": "lease", "ts": 0.6, "event": "commit", "worker": "w0",
     "index": 0, "fence": 1},
    {"kind": "lease", "ts": 0.7, "event": "commit", "worker": "w0",
     "index": 1, "fence": 2},
    {"kind": "alert", "ts": 0.8, "source": "monitor", "seq": 1,
     "rule": "slot-bound", "severity": "error", "message": "late"},
    {"kind": "metrics", "ts": 0.9, "snapshot": {
        "commit_total": {"kind": "counter", "series": [
            {"labels": {"worker": "w0"}, "value": 2.0}]}}},
    {"kind": "fabric_end", "ts": 1.0, "chunks": 2, "wall_s": 1.0},
]


class TestFleetRollup:
    def test_summarize_counts_fleet_kinds(self):
        fleet = summarize(FLEET_SAMPLE)["fleet"]
        assert fleet["lease_events"] == {
            "claim": 2, "commit": 2, "fence_reject": 1, "takeover": 1,
        }
        assert fleet["workers"] == ["w0", "w1"]
        assert fleet["takeovers"] == 1
        assert fleet["fence_rejects"] == 1
        assert fleet["fabric_runs"] == 1
        assert fleet["fabric_chunks"] == 2
        assert fleet["alerts"] == 1
        assert fleet["metrics_snapshots"] == 1
        assert fleet["metrics_totals"] == {"commit_total": 2.0}

    def test_logs_without_fleet_records_stay_silent(self):
        fleet = summarize(SAMPLE)["fleet"]
        assert fleet["lease_events"] == {}
        assert fleet["fabric_runs"] == 0
        text = render_summary(summarize(SAMPLE))
        assert "Fleet" not in text

    def test_render_contains_fleet_tables(self):
        text = render_summary(summarize(FLEET_SAMPLE))
        assert "Fleet (fabric lease audit + registry totals)" in text
        assert "Fleet metrics (last registry snapshot, label-summed)" in text
        assert "fence_rejects" in text
