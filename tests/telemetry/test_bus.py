"""The recorder's subscriber bus: dispatch, isolation, and the no-op guarantee."""

import logging

from repro.telemetry.core import Telemetry, activate, event


class TestSubscription:
    def test_subscriber_sees_emitted_records(self):
        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(seen.append)
            tel.emit("event", name="x")
        assert [r["kind"] for r in seen] == ["event"]
        assert seen[0]["name"] == "x"

    def test_subscriber_sees_shipped_worker_records(self):
        # Pool workers ship pre-formed records through write_record; the
        # bus must cover that path too or campaign monitoring misses
        # every chunk.
        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(seen.append)
            tel.write_record({"kind": "run_end", "ts": 1.0, "chunk": 3})
        assert seen == [{"kind": "run_end", "ts": 1.0, "chunk": 3}]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        with Telemetry.buffered() as tel:
            unsubscribe = tel.subscribe(seen.append)
            tel.emit("event", name="first")
            unsubscribe()
            tel.emit("event", name="second")
        assert [r["name"] for r in seen] == ["first"]

    def test_multiple_subscribers_all_receive(self):
        a, b = [], []
        with Telemetry.buffered() as tel:
            tel.subscribe(a.append)
            tel.subscribe(b.append)
            tel.emit("event", name="x")
        assert len(a) == len(b) == 1

    def test_records_still_recorded_without_subscribers(self):
        with Telemetry.buffered() as tel:
            tel.emit("event", name="x")
            assert [r["kind"] for r in tel.drain()] == ["event"]


class TestIsolation:
    def test_failing_subscriber_does_not_break_recording(self, caplog):
        def explode(record):
            raise RuntimeError("subscriber bug")

        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(explode)
            tel.subscribe(seen.append)
            with caplog.at_level(logging.ERROR, logger="repro.telemetry"):
                tel.emit("event", name="x")
            assert len(tel.drain()) == 1
        assert len(seen) == 1  # later subscribers unaffected
        assert any("subscriber" in r.message for r in caplog.records)

    def test_subscriber_may_emit_without_unbounded_recursion(self):
        # A monitor emits `alert` records back into the stream it
        # watches; the depth guard bounds the feedback loop.
        with Telemetry.buffered() as tel:
            def echo(record):
                tel.emit("event", name="echo")

            tel.subscribe(echo)
            tel.emit("event", name="seed")
            records = tel.drain()
        assert 2 <= len(records) <= 16  # terminated, not runaway


class TestDisabledPath:
    def test_ambient_helpers_never_touch_bus_when_inactive(self):
        # The strict no-op guarantee: with no recorder active, the fast
        # helpers return before any record (or dispatch) is constructed.
        event("event", name="x")  # must simply not raise

    def test_no_dispatch_state_when_no_subscribers(self):
        with Telemetry.buffered() as tel:
            with activate(tel):
                event("event", name="x")
            records = tel.drain()
        assert len(records) == 1
        assert tel._subscribers == ()


class TestConcurrentShipBack:
    """Satellite: the bus under concurrent worker ship-back — fabric
    event forwarding, resilient_map callbacks, and heartbeat threads
    all write through one recorder from different threads."""

    def _hammer(self, tel, threads=4, per_thread=200):
        import threading

        def ship(worker):
            for n in range(per_thread):
                tel.write_record(
                    {"kind": "event", "ts": float(n), "name": "chunk",
                     "worker": worker, "n": n}
                )

        pool = [
            threading.Thread(target=ship, args=(f"w{i}",))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        return threads * per_thread

    def test_streamed_log_lines_never_tear(self, tmp_path):
        import json

        log = tmp_path / "log.jsonl"
        tel = Telemetry.to_path(log)
        with tel:
            expected = self._hammer(tel)
        lines = log.read_text(encoding="utf-8").splitlines()
        assert len(lines) == expected
        decoded = [json.loads(line) for line in lines]  # every line whole
        # No record lost, none duplicated, per-worker order preserved.
        for worker in ("w0", "w1", "w2", "w3"):
            ours = [r["n"] for r in decoded if r["worker"] == worker]
            assert ours == list(range(200))

    def test_subscribers_see_every_record_exactly_once(self):
        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(seen.append)
            expected = self._hammer(tel)
            recorded = tel.drain()
        assert len(seen) == len(recorded) == expected
        keys = [(r["worker"], r["n"]) for r in seen]
        assert len(set(keys)) == expected  # exactly once each

    def test_run_seq_tags_are_unique_across_threads(self):
        import threading

        with Telemetry.buffered() as tel:
            ids: list[str] = []
            lock = threading.Lock()

            def open_many():
                mine = [tel.open_run(nodes=1) for _ in range(100)]
                with lock:
                    ids.extend(mine)

            pool = [threading.Thread(target=open_many) for _ in range(4)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        assert len(ids) == 400
        assert len(set(ids)) == 400  # no thread ever minted a duplicate

    def test_raising_subscriber_mid_merge_isolates_per_record(self, caplog):
        # A subscriber that blows up on *some* shipped records must not
        # lose any record for the recording or for healthy subscribers.
        import logging

        seen = []

        def picky(record):
            if record.get("n", 0) % 7 == 0:
                raise RuntimeError("mid-merge subscriber bug")

        with Telemetry.buffered() as tel:
            tel.subscribe(picky)
            tel.subscribe(seen.append)
            with caplog.at_level(logging.ERROR, logger="repro.telemetry"):
                expected = self._hammer(tel)
            recorded = tel.drain()
        assert len(recorded) == expected
        assert len(seen) == expected
        assert any("subscriber" in r.message for r in caplog.records)
