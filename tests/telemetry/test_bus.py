"""The recorder's subscriber bus: dispatch, isolation, and the no-op guarantee."""

import logging

from repro.telemetry.core import Telemetry, activate, event


class TestSubscription:
    def test_subscriber_sees_emitted_records(self):
        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(seen.append)
            tel.emit("event", name="x")
        assert [r["kind"] for r in seen] == ["event"]
        assert seen[0]["name"] == "x"

    def test_subscriber_sees_shipped_worker_records(self):
        # Pool workers ship pre-formed records through write_record; the
        # bus must cover that path too or campaign monitoring misses
        # every chunk.
        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(seen.append)
            tel.write_record({"kind": "run_end", "ts": 1.0, "chunk": 3})
        assert seen == [{"kind": "run_end", "ts": 1.0, "chunk": 3}]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        with Telemetry.buffered() as tel:
            unsubscribe = tel.subscribe(seen.append)
            tel.emit("event", name="first")
            unsubscribe()
            tel.emit("event", name="second")
        assert [r["name"] for r in seen] == ["first"]

    def test_multiple_subscribers_all_receive(self):
        a, b = [], []
        with Telemetry.buffered() as tel:
            tel.subscribe(a.append)
            tel.subscribe(b.append)
            tel.emit("event", name="x")
        assert len(a) == len(b) == 1

    def test_records_still_recorded_without_subscribers(self):
        with Telemetry.buffered() as tel:
            tel.emit("event", name="x")
            assert [r["kind"] for r in tel.drain()] == ["event"]


class TestIsolation:
    def test_failing_subscriber_does_not_break_recording(self, caplog):
        def explode(record):
            raise RuntimeError("subscriber bug")

        seen = []
        with Telemetry.buffered() as tel:
            tel.subscribe(explode)
            tel.subscribe(seen.append)
            with caplog.at_level(logging.ERROR, logger="repro.telemetry"):
                tel.emit("event", name="x")
            assert len(tel.drain()) == 1
        assert len(seen) == 1  # later subscribers unaffected
        assert any("subscriber" in r.message for r in caplog.records)

    def test_subscriber_may_emit_without_unbounded_recursion(self):
        # A monitor emits `alert` records back into the stream it
        # watches; the depth guard bounds the feedback loop.
        with Telemetry.buffered() as tel:
            def echo(record):
                tel.emit("event", name="echo")

            tel.subscribe(echo)
            tel.emit("event", name="seed")
            records = tel.drain()
        assert 2 <= len(records) <= 16  # terminated, not runaway


class TestDisabledPath:
    def test_ambient_helpers_never_touch_bus_when_inactive(self):
        # The strict no-op guarantee: with no recorder active, the fast
        # helpers return before any record (or dispatch) is constructed.
        event("event", name="x")  # must simply not raise

    def test_no_dispatch_state_when_no_subscribers(self):
        with Telemetry.buffered() as tel:
            with activate(tel):
                event("event", name="x")
            records = tel.drain()
        assert len(records) == 1
        assert tel._subscribers == ()
