"""Bench harness guardrails: --check diagnostics and the history trail."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_engine  # noqa: E402


@pytest.fixture(autouse=True)
def fast_measure(monkeypatch):
    """--check should not re-run the real benchmark in unit tests."""
    monkeypatch.setattr(
        bench_engine, "measure_slots_per_sec",
        lambda **kw: {"schema": "repro-bench-engine/1",
                      "combined_slots_per_sec": 100.0},
    )


class TestCheckDiagnostics:
    def test_missing_baseline(self, tmp_path):
        ok, message = bench_engine.check_against_baseline(tmp_path / "absent.json")
        assert not ok
        assert "no baseline" in message

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json", encoding="utf-8")
        ok, message = bench_engine.check_against_baseline(path)
        assert not ok
        assert "unreadable" in message
        assert "re-record" in message

    def test_missing_combined_metric(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({"schema": "repro-bench-engine/1"}),
                        encoding="utf-8")
        ok, message = bench_engine.check_against_baseline(path)
        assert not ok
        assert "combined_slots_per_sec" in message

    def test_stale_topology_named(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "schema": "repro-bench-engine/1",
            "combined_slots_per_sec": 100.0,
            "topologies": {"retired-topo-9": {"slots_per_sec": 1.0}},
        }), encoding="utf-8")
        ok, message = bench_engine.check_against_baseline(path)
        assert not ok
        assert "retired-topo-9" in message
        assert "no longer produces" in message

    def test_ok_within_tolerance(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "schema": "repro-bench-engine/1",
            "combined_slots_per_sec": 110.0,
            "topologies": {name: {} for name, _ in bench_engine.TOPOLOGIES},
        }), encoding="utf-8")
        ok, message = bench_engine.check_against_baseline(path, tolerance=0.35)
        assert ok
        assert "OK" in message

    def test_regression_detected(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({
            "schema": "repro-bench-engine/1",
            "combined_slots_per_sec": 1000.0,
        }), encoding="utf-8")
        ok, message = bench_engine.check_against_baseline(path, tolerance=0.35)
        assert not ok
        assert "REGRESSION" in message


class TestHistoryTrail:
    def test_write_appends_history(self, tmp_path, monkeypatch):
        history = tmp_path / "hist.jsonl"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(history))
        bench_engine.write_bench_json(tmp_path / "BENCH_engine.json")
        bench_engine.write_bench_json(tmp_path / "BENCH_engine.json")
        lines = history.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(
            json.loads(line)["schema"] == "repro-bench-engine/1" for line in lines
        )

    def test_history_disabled_by_empty_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "")
        bench_engine.write_bench_json(tmp_path / "BENCH_engine.json")
        assert not (tmp_path / "hist.jsonl").exists()
