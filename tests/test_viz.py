"""Tests for the ASCII visualisation helpers."""

import pytest

from repro import viz
from repro.errors import ReproError
from repro.graphs import line, star
from repro.protocols.decay_broadcast import run_decay_broadcast
from repro.sim import Engine, NodeProgram, Receive, Transmit


class Beacon(NodeProgram):
    def act(self, ctx):
        return Transmit("b")


class Listener(NodeProgram):
    def act(self, ctx):
        return Receive()


def traced(graph, programs, initiators, slots):
    engine = Engine(graph, programs, initiators=initiators, record_trace=True)
    result = engine.run(slots)
    return result.trace


class TestTimeline:
    def test_glyphs(self):
        # 0 transmits, 1 receives-and-hears.
        trace = traced(line(2), {0: Beacon(), 1: Listener()}, {0}, 3)
        out = viz.timeline(trace, [0, 1])
        lines = out.splitlines()
        assert lines[0].endswith("|TTT|")
        assert lines[1].endswith("|rrr|")

    def test_collision_glyph(self):
        trace = traced(
            star(2), {0: Listener(), 1: Beacon(), 2: Beacon()}, {1, 2}, 2
        )
        out = viz.timeline(trace, [0])
        assert out.endswith("|xx|")

    def test_silence_glyph(self):
        trace = traced(line(2), {0: Listener(), 1: Listener()}, set(), 2)
        out = viz.timeline(trace, [0])
        assert out.endswith("|..|")

    def test_max_slots_clips(self):
        trace = traced(line(2), {0: Beacon(), 1: Listener()}, {0}, 10)
        out = viz.timeline(trace, [0], max_slots=4)
        assert out.endswith("|TTTT|")

    def test_needs_nodes(self):
        trace = traced(line(2), {0: Beacon(), 1: Listener()}, {0}, 1)
        with pytest.raises(ReproError):
            viz.timeline(trace, [])


class TestRuler:
    def test_marks_phase_boundaries(self):
        ruler = viz.phase_ruler(8, 4)
        assert ruler.endswith("||---|---|")

    def test_validation(self):
        with pytest.raises(ReproError):
            viz.phase_ruler(4, 0)


class TestReceptionWave:
    def test_empty_trace(self):
        trace = traced(line(2), {0: Listener(), 1: Listener()}, set(), 2)
        assert "no node" in viz.reception_wave(trace)

    def test_broadcast_wave_counts_all_nodes(self):
        from repro.graphs import random_gnp
        from repro.rng import spawn

        g = random_gnp(30, 0.15, spawn(1, "viz"))
        result = run_decay_broadcast(g, source=0, seed=2, epsilon=0.05, record_trace=True)
        wave = viz.reception_wave(result.trace)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in wave.splitlines())
        assert total == len(result.metrics.first_reception)

    def test_histogram_shape(self):
        trace = traced(line(2), {0: Beacon(), 1: Listener()}, {0}, 3)
        wave = viz.reception_wave(trace)
        assert wave.startswith("slot    0 |")
        assert wave.endswith(" 1")
