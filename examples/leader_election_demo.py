#!/usr/bin/env python3
"""Leader election over a multi-hop radio network — no collision detection.

The [BGI89] application sketched in the paper's Section 2.3: emulate a
single-hop, collision-detecting protocol (Willard-style bit probing)
on an arbitrary multi-hop network by using one Broadcast_scheme epoch
per probed ID bit.  Every node ends up knowing the maximum ID, and its
owner declares itself leader.

Run:  python examples/leader_election_demo.py [seed]
"""

import sys

from repro.graphs import grid
from repro.protocols import run_leader_election


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    g = grid(5, 5)
    print(f"electing a leader among {g.num_nodes()} nodes on a 5x5 mesh...")
    result = run_leader_election(g, seed=seed, epsilon=0.1)
    outputs = result.node_results()
    winners = {out["winner_id"] for out in outputs.values()}
    leaders = [node for node, out in outputs.items() if out["is_leader"]]
    print(f"finished in {result.slots} slots")
    print(f"winner ID agreed by all nodes: {sorted(winners)}")
    print(f"self-declared leader(s): {leaders}")
    if winners == {max(g.nodes)} and leaders == [max(g.nodes)]:
        print("=> correct: the maximum ID won and exactly its owner leads")
    else:
        print("=> a broadcast epoch failed (probability <= 0.1); rerun with another seed")


if __name__ == "__main__":
    main()
