#!/usr/bin/env python3
"""Point-to-point routing: a packet rides a beam, not a flood.

[BII89], built on this paper's Decay: discover distances to the target
with Decay-BFS, then forward the packet as a hop-counted wavefront.
Only nodes on shortest source→target paths ever touch the packet — the
demo prints the grid with the beam highlighted.

Run:  python examples/routing_demo.py [side] [seed]
"""

import sys

from repro.graphs import grid
from repro.protocols import run_routing


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    g = grid(side, side)
    source, target = 0, side - 1  # along the top edge

    out = run_routing(g, source, target, seed=seed, epsilon=0.05)
    print(
        f"{side}x{side} grid, routing node {source} -> node {target} "
        f"({out['hop_distance']} hops)"
    )
    if not out["delivered"]:
        print("delivery failed this run (prob <= 0.05); try another seed")
        return
    print(
        f"delivered: discovery {out['discovery_slots']} slots + "
        f"forwarding {out['forwarding_slots']} slots"
    )
    beam = set(out["beam"])
    print(f"beam: {len(beam)} of {g.num_nodes()} nodes ever held the packet\n")
    for r in range(side):
        row = []
        for c in range(side):
            node = r * side + c
            if node == source:
                row.append("S")
            elif node == target:
                row.append("T")
            elif node in beam:
                row.append("#")
            else:
                row.append(".")
        print(" ".join(row))
    print("\nS source, T target, # carried the packet, . never touched it")


if __name__ == "__main__":
    main()
