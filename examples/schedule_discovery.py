#!/usr/bin/env python3
"""Schedules: what the randomized protocol "finds", vs centralized planning.

The paper observes its protocol decomposes into "a distributed
algorithm for finding a broadcast schedule and a trivial protocol using
the schedule", and contrasts with the centralized constructions of
[CK85]/[CW87].  This example makes that concrete on one network:

1. run the randomized broadcast with tracing and *extract* the schedule
   it implicitly discovered (the transmissions that caused each first
   delivery);
2. build two centralized schedules — the trivial one-transmitter-per-
   slot tree schedule (O(n)) and the greedy layered schedule
   ([CW87]-flavoured, O(D log n)-ish);
3. replay all three deterministically and compare lengths.

Run:  python examples/schedule_discovery.py [n] [seed]
"""

import sys

from repro.core.schedule import (
    extract_schedule,
    greedy_layer_schedule,
    sequential_tree_schedule,
    simulate_schedule,
    verify_schedule,
)
from repro.graphs import random_gnp
from repro.graphs.properties import diameter
from repro.protocols import run_decay_broadcast
from repro.rng import spawn


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    g = random_gnp(n, min(1.0, 7.0 / n), spawn(seed, "net"))
    d = diameter(g)
    print(f"network: n={n}, D={d}, edges={g.num_edges()}\n")

    result = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.05, record_trace=True)
    if not result.broadcast_succeeded(source=0):
        print("randomized run failed (prob <= 0.05); rerun with another seed")
        return
    discovered = extract_schedule(result.trace, 0)
    tree = sequential_tree_schedule(g, 0)
    greedy = greedy_layer_schedule(g, 0, rng=spawn(seed, "greedy"))

    rows = [
        ("randomized run itself", result.slots, "-"),
        ("schedule extracted from that run", len(discovered),
         "yes" if verify_schedule(g, 0, discovered) else "NO"),
        ("centralized tree schedule (O(n))", len(tree),
         "yes" if verify_schedule(g, 0, tree) else "NO"),
        ("centralized greedy schedule ([CW87] flavour)", len(greedy),
         "yes" if verify_schedule(g, 0, greedy) else "NO"),
    ]
    print(f"{'method':<46} {'slots':>6}  replayable")
    print("-" * 66)
    for name, slots, ok in rows:
        print(f"{name:<46} {slots:>6}  {ok}")

    informed = simulate_schedule(g, 0, greedy)
    waves = {}
    for node, slot in informed.items():
        waves.setdefault(slot, 0)
        waves[slot] += 1
    print("\ngreedy schedule wavefront (slot -> newly informed nodes):")
    for slot in sorted(waves):
        print(f"  slot {slot:>3}: {'*' * waves[slot]} ({waves[slot]})")
    print(
        "\nThe extracted schedule shows the randomized protocol implicitly "
        "solved the\n(NP-hard to optimise) scheduling problem — with no "
        "topology knowledge at all."
    )


if __name__ == "__main__":
    main()
