#!/usr/bin/env python3
"""Sensor field: broadcast + BFS routing over a unit-disk network.

The paper's introduction motivates radio broadcast with ad-hoc
multi-hop networks; the canonical geometric model is the unit-disk
graph: sensors scattered in a square, hearing each other within a
radio range.  This example:

1. drops ``n`` sensors uniformly at random and wires them by range,
2. floods an alert from the sensor nearest the origin with the
   Decay-based Broadcast protocol,
3. runs the Decay-based BFS to compute hop distances (the routing tree
   the paper's Section 2.3 builds), and
4. prints a small ASCII heat map of hop distance across the field.

Run:  python examples/sensor_field.py [n] [seed]
"""

import math
import sys

from repro.graphs import unit_disk
from repro.graphs.properties import diameter, max_degree
from repro.protocols import run_bfs, run_decay_broadcast
from repro.rng import spawn


def ascii_heatmap(positions, labels, cells=14) -> str:
    """Render hop distances on a character grid ('.' = empty cell)."""
    grid = [["." for _ in range(cells)] for _ in range(cells)]
    for node, (x, y) in positions.items():
        row = min(cells - 1, int(y * cells))
        col = min(cells - 1, int(x * cells))
        label = labels.get(node)
        if label is None:
            grid[row][col] = "?"
        else:
            grid[row][col] = format(min(label, 35), "X") if label >= 10 else str(label)
    return "\n".join(" ".join(row) for row in grid)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    radius = 1.7 * math.sqrt(math.log(n) / n)  # just above the connectivity threshold

    field = unit_disk(n, radius, spawn(seed, "field"))
    source = min(
        field.nodes,
        key=lambda v: field.positions[v][0] ** 2 + field.positions[v][1] ** 2,
    )
    print(
        f"sensor field: n={n}, radio range={radius:.3f}, D={diameter(field)}, "
        f"max degree={max_degree(field)}, alert source={source}"
    )

    alert = run_decay_broadcast(field, source=source, seed=seed, epsilon=0.02)
    completion = alert.broadcast_completion_slot(source=source)
    if completion is None:
        print("alert flood failed this run (probability <= 0.02); rerun with a new seed")
    else:
        print(f"alert reached all {n} sensors by slot {completion} "
              f"({alert.metrics.transmissions} transmissions)")

    routing = run_bfs(field, source, seed=seed + 1, epsilon=0.02)
    hops = routing.node_results()
    reached = [h for h in hops.values() if h is not None]
    print(
        f"BFS routing labels computed in {routing.slots} slots; "
        f"max hops={max(reached)}, mean={sum(reached) / len(reached):.2f}"
    )
    print("\nhop-distance heat map (source at the low corner):")
    print(ascii_heatmap(field.positions, hops))


if __name__ == "__main__":
    main()
