#!/usr/bin/env python3
"""Quickstart: broadcast one message through a random radio network.

This is the 60-second tour of the library:

1. build a topology (``repro.graphs``),
2. run the paper's randomized Broadcast protocol on it
   (``repro.protocols.run_decay_broadcast``),
3. read the outcome off the ``RunResult`` and compare it with the
   paper's Theorem 4 bound (``repro.core.bounds``).

Run:  python examples/quickstart.py [n] [seed]
"""

import sys

from repro.core.bounds import theorem4_slot_bound
from repro.graphs import random_gnp
from repro.graphs.properties import diameter, max_degree
from repro.protocols import run_decay_broadcast
from repro.rng import spawn


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    epsilon = 0.05

    # 1. A connected G(n, p) radio network.
    graph = random_gnp(n, min(1.0, 8.0 / n), spawn(seed, "topology"))
    d = diameter(graph)
    delta = max_degree(graph)
    print(f"network: n={graph.num_nodes()}  D={d}  max degree={delta}")

    # 2. The paper's Broadcast_scheme: source 0 transmits at slot 0,
    #    everyone resolves conflicts with Decay.
    result = run_decay_broadcast(graph, source=0, seed=seed, epsilon=epsilon)

    # 3. Outcomes.
    completion = result.broadcast_completion_slot(source=0)
    bound = theorem4_slot_bound(n, d, delta, epsilon)
    if completion is None:
        print(f"broadcast FAILED within {result.slots} slots "
              f"(allowed with probability <= {epsilon})")
        return
    print(f"all {n} nodes informed by slot {completion}")
    print(f"Theorem 4 bound (prob >= {1 - 2 * epsilon}): {bound} slots")
    print(f"transmissions: {result.metrics.transmissions}, "
          f"collisions observed at receivers: {result.metrics.collisions}")
    print("per-node first-reception slots (first 10):")
    for node in sorted(result.metrics.first_reception)[:10]:
        print(f"  node {node:>3}: slot {result.metrics.first_reception[node]}")


if __name__ == "__main__":
    main()
