#!/usr/bin/env python3
"""Broadcast over a *moving* sensor swarm.

Property 3 of the paper, taken at its word: the Decay protocol never
reads IDs or link state, so it keeps working while nodes physically
move and links churn.  We drive a random-waypoint mobility model
(`repro.sim.mobility`), compile the resulting link churn into the
engine's fault schedule, and broadcast through the moving swarm at
several speeds.

Run:  python examples/mobile_network.py [n] [seed]
"""

import sys

from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs import unit_disk
from repro.protocols import run_decay_broadcast
from repro.rng import spawn
from repro.sim.mobility import RandomWaypointModel, mobility_fault_schedule


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    radius = 0.42

    print(f"{'speed/slot':>11} | {'link events':>11} | {'outcome':<26} | slots")
    print("-" * 66)
    for speed in (0.0, 0.005, 0.02, 0.06):
        g = unit_disk(n, radius, spawn(seed, "swarm"))
        tree = spanning_tree(g, 0)  # the paper's connectivity proviso
        protected = {frozenset(e) for e in tree.edges}
        if speed > 0:
            model = RandomWaypointModel(
                dict(g.positions), spawn(seed, "motion", speed), speed=speed
            )
            schedule = mobility_fault_schedule(
                model, radius, horizon=800, resample_every=8, protected=protected
            )
            events = len(schedule.edge_faults)
        else:
            schedule, events = None, 0
        result = run_decay_broadcast(
            g, source=0, seed=seed, epsilon=0.05, faults=schedule
        )
        slot = result.broadcast_completion_slot(source=0)
        outcome = (
            f"complete (all {n} nodes)" if slot is not None else "FAILED this run"
        )
        print(f"{speed:>11} | {events:>11} | {outcome:<26} | {slot}")
    print(
        "\nLink churn grows ~linearly with speed, yet broadcast completes at "
        "every speed:\nDecay needs no link state, so there is nothing for the "
        "movement to invalidate\n(while the protected backbone keeps the "
        "surviving graph connected)."
    )


if __name__ == "__main__":
    main()
