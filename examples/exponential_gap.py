#!/usr/bin/env python3
"""The headline result, live: randomization beats determinism exponentially.

Reproduces Corollary 13's phenomenon at demo scale: on the paper's
lower-bound networks ``C_n`` (diameter 3!), any deterministic protocol
needs Ω(n) slots while the randomized Decay protocol finishes in
O(log² n).  We race three protocols over growing ``n`` and print the
slot counts side by side with a log-scale ASCII chart.

Run:  python examples/exponential_gap.py
"""

import math

from repro.analysis.stats import mean
from repro.graphs import c_n
from repro.protocols import (
    make_dfs_programs,
    make_round_robin_programs,
    run_broadcast,
    run_decay_broadcast,
)


def race(n: int, reps: int = 9) -> tuple[float, int, int]:
    """Return (randomized mean, round-robin worst, dfs worst) slots."""
    hidden_sets = [
        frozenset({n}),
        frozenset(range(n // 2 + 1, n + 1)),
        frozenset(range(1, n + 1)),
    ]
    rand = []
    for seed in range(reps):
        g = c_n(n, hidden_sets[seed % len(hidden_sets)])
        result = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.1)
        slot = result.broadcast_completion_slot(source=0)
        if slot is not None:
            rand.append(slot)
    rr_worst = dfs_worst = 0
    for s in hidden_sets:
        g = c_n(n, s)
        rr = run_broadcast(
            g,
            make_round_robin_programs(g, 0, frame_size=n + 2),
            initiators={0},
            max_slots=(n + 2) * 8,
            stop="informed",
        ).broadcast_completion_slot(source=0)
        dfs = run_broadcast(
            g,
            make_dfs_programs(g, 0),
            initiators={0},
            max_slots=4 * (n + 2),
            stop="informed",
        ).broadcast_completion_slot(source=0)
        rr_worst = max(rr_worst, rr if rr is not None else (n + 2) * 8)
        dfs_worst = max(dfs_worst, dfs if dfs is not None else 4 * (n + 2))
    return mean(rand), rr_worst, dfs_worst


def bar(value: float, per_char: float = 0.35) -> str:
    """Log-scale bar."""
    return "#" * max(1, int(math.log2(max(2.0, value)) / per_char))


def main() -> None:
    print("Broadcast slots on the paper's C_n networks (diameter 3):\n")
    print(f"{'n':>5} | {'randomized':>10} | {'round-robin':>11} | {'DFS':>5} | gap")
    print("-" * 60)
    rows = []
    for n in (8, 16, 32, 64, 128, 256, 512):
        rand, rr, dfs = race(n)
        rows.append((n, rand, rr, dfs))
        gap = min(rr, dfs) / rand
        print(f"{n:>5} | {rand:>10.1f} | {rr:>11} | {dfs:>5} | {gap:>5.1f}x")
    print("\nlog-scale view (each # is a factor of ~1.27):\n")
    for n, rand, rr, dfs in rows:
        print(f"n={n:<4} rand {bar(rand):<30} {rand:.0f}")
        print(f"       det  {bar(min(rr, dfs)):<30} {min(rr, dfs)}")
    print(
        "\nThe deterministic bars grow with n; the randomized bar barely "
        "moves.\nThat flat-vs-linear separation on diameter-3 networks is "
        "Corollary 13."
    )


if __name__ == "__main__":
    main()
