#!/usr/bin/env python3
"""Broadcast through a failing network (paper property 3).

The Decay protocol never reads IDs, neighbour counts, or link state —
so edges can fail mid-broadcast and, as long as the surviving graph
stays connected, the message still gets through.  This example kills a
large fraction of non-spanning-tree edges at random slots *during* the
broadcast and reports the outcome, then repeats with the spanning tree
cut too (violating the paper's proviso) to show that arm collapse.

Run:  python examples/dynamic_network.py [n] [seed]
"""

import sys

from repro.experiments.exp_dynamic import spanning_tree
from repro.graphs import random_gnp
from repro.graphs.properties import diameter
from repro.protocols import run_decay_broadcast
from repro.rng import spawn
from repro.sim.faults import EdgeFault, FaultSchedule, random_edge_kill_schedule


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    g = random_gnp(n, min(1.0, 10.0 / n), spawn(seed, "net"))
    tree = spanning_tree(g, 0)
    print(
        f"network: n={n}, edges={g.num_edges()} "
        f"(spanning tree protects {tree.num_edges()}), D={diameter(g)}"
    )

    # Arm 1: kill every non-tree edge at a random slot during the run.
    kill_window = 200
    faults = random_edge_kill_schedule(g, tree, 1.0, kill_window, spawn(seed, "faults"))
    print(f"arm 1: scheduling {len(faults.edge_faults)} edge failures in slots [0, {kill_window})")
    result = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.05, faults=faults)
    completion = result.broadcast_completion_slot(source=0)
    if completion is None:
        print("  broadcast failed (allowed w.p. <= 0.05) — rerun with another seed")
    else:
        print(f"  broadcast still completed by slot {completion} despite the failures")

    # Arm 2: violate the proviso — at slot 1, cut half the spanning tree
    # AND every non-tree edge, so parts of the network are truly severed.
    cut_rng = spawn(seed, "cut")
    protected = {frozenset(e) for e in tree.edges}
    tree_cuts = [
        EdgeFault(slot=1, u=u, v=v) for u, v in tree.edges if cut_rng.random() < 0.5
    ]
    nontree_cuts = [
        EdgeFault(slot=1, u=u, v=v)
        for u, v in g.edges
        if frozenset((u, v)) not in protected
    ]
    all_faults = FaultSchedule(edge_faults=tree_cuts + nontree_cuts)
    print(
        f"arm 2: at slot 1, cutting {len(tree_cuts)} spanning-tree edges "
        f"and all {len(nontree_cuts)} other edges"
    )
    result2 = run_decay_broadcast(g, source=0, seed=seed, epsilon=0.05, faults=all_faults)
    coverage = result2.metrics.coverage(g.nodes, skip=frozenset({0}))
    print(
        f"  coverage collapsed to {coverage:.0%} of nodes — the 'surviving "
        "graph stays connected' proviso is load-bearing"
    )


if __name__ == "__main__":
    main()
